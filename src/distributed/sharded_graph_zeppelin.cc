#include "distributed/sharded_graph_zeppelin.h"

#include <algorithm>

#include "core/connectivity.h"
#include "distributed/shard_endpoint.h"
#include "distributed/shard_protocol.h"
#include "util/check.h"

namespace gz {
namespace {

// Single updates accumulate up to this many before one frame leaves
// (mirrors GraphZeppelin's API-boundary span).
constexpr size_t kPendingSpanUpdates = 1024;

// In-process shards have nowhere remote to live; an elastic op naming
// a non-local endpoint is a caller error, reported not silently bent.
Status RequireLocalEndpoint(const std::string& endpoint) {
  Result<ShardEndpoint> parsed = ParseShardEndpoint(endpoint);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().local()) {
    return Status::FailedPrecondition(
        "in-process mode cannot host shard endpoint '" + endpoint + "'");
  }
  return Status::Ok();
}

}  // namespace

ShardedGraphZeppelin::ShardedGraphZeppelin(const GraphZeppelinConfig& base,
                                           int num_shards, Mode mode,
                                           ShardClusterOptions cluster_options)
    : base_(base),
      mode_(mode),
      cluster_options_(std::move(cluster_options)),
      cache_(cluster_options_.migrate_nodes_per_chunk) {
  GZ_CHECK(num_shards >= 1);
  GZ_CHECK(cluster_options_.migrate_nodes_per_chunk >= 1);
  if (mode_ == Mode::kInProcess) {
    table_ = MakeRoutingTable(num_shards);
    for (int s = 0; s < num_shards; ++s) {
      const int id = AllocateInProcessShard();
      GZ_CHECK(id == s);
    }
  } else {
    cluster_ = std::make_unique<ShardCluster>(base, num_shards,
                                              cluster_options_);
    pending_.reserve(kPendingSpanUpdates);
  }
}

int ShardedGraphZeppelin::AllocateInProcessShard() {
  const int id = static_cast<int>(shards_.size());
  GraphZeppelinConfig shard_config = base_;
  shard_config.instance_tag = "shard" + std::to_string(id);
  shards_.push_back(std::make_unique<GraphZeppelin>(shard_config));
  route_bufs_.emplace_back();
  delta_seq_.push_back(0);
  return id;
}

Status ShardedGraphZeppelin::Init() {
  if (mode_ == Mode::kProcess) {
    Status s = cluster_->Start();
    if (s.ok()) initialized_ = true;
    return s;
  }
  // Replication needs independently failing processes; R "replicas"
  // inside one address space share every fault, so an in-process
  // cluster asking for them is a misconfiguration, not a degenerate
  // deployment to run anyway.
  if (cluster_options_.replication_factor > 1) {
    return Status::InvalidArgument(
        "in-process mode cannot replicate (replication_factor " +
        std::to_string(cluster_options_.replication_factor) +
        "); use Mode::kProcess");
  }
  // An endpoint list naming remote shards with in-process execution is
  // a misconfiguration that must not silently run everything locally —
  // the same refusal the elastic ops give a non-local endpoint.
  for (const std::string& endpoint : cluster_options_.shard_endpoints) {
    Status s = RequireLocalEndpoint(endpoint);
    if (!s.ok()) return s;
  }
  for (auto& shard : shards_) {
    Status s = shard->Init();
    if (!s.ok()) return s;
  }
  initialized_ = true;
  return Status::Ok();
}

int ShardedGraphZeppelin::ShardFor(const Edge& e) const {
  return RouteToShard(e, base_.num_nodes, routing_table());
}

const RoutingTable& ShardedGraphZeppelin::routing_table() const {
  return mode_ == Mode::kProcess ? cluster_->routing_table() : table_;
}

void ShardedGraphZeppelin::DrainPending() {
  if (pending_.empty()) return;
  GZ_CHECK_OK(cluster_->Update(pending_.data(), pending_.size()));
  pending_.clear();  // Keeps capacity.
}

void ShardedGraphZeppelin::Update(const GraphUpdate& update) {
  if (mode_ == Mode::kProcess) {
    pending_.push_back(update);
    if (pending_.size() >= kPendingSpanUpdates) DrainPending();
    return;
  }
  shards_[ShardFor(update.edge)]->Update(update);
}

void ShardedGraphZeppelin::Update(const GraphUpdate* updates, size_t count) {
  if (mode_ == Mode::kProcess) {
    DrainPending();  // Preserve stream order with singly fed updates.
    GZ_CHECK_OK(cluster_->Update(updates, count));
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    route_bufs_[ShardFor(updates[i].edge)].push_back(updates[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::vector<GraphUpdate>& buf = route_bufs_[s];
    if (buf.empty()) continue;
    GZ_CHECK_MSG(shards_[s] != nullptr,
                 "table routed an update to a removed shard");
    shards_[s]->Update(buf.data(), buf.size());
    buf.clear();  // Keeps capacity for the next span.
  }
}

void ShardedGraphZeppelin::Flush() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    GZ_CHECK_OK(cluster_->Flush());
    return;
  }
  for (auto& shard : shards_) {
    if (shard != nullptr) shard->Flush();
  }
}

GraphSnapshot ShardedGraphZeppelin::Snapshot() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    Result<GraphSnapshot> r = cluster_->Snapshot();
    GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
    return std::move(r).value();
  }
  // All shards share hash seeds, so the node-wise XOR of their
  // snapshots is the sketch of the whole graph. Shards past the first
  // are folded in place, one scratch sketch at a time. Removed shards'
  // ingested counts live on via migrated_updates_ (their sketch
  // content migrated to survivors as count-free deltas).
  GraphSnapshot merged;
  for (auto& shard : shards_) {
    if (shard == nullptr) continue;
    if (!merged.valid()) {
      merged = shard->Snapshot();
    } else {
      GZ_CHECK_OK(shard->MergeSnapshotInto(&merged));
    }
  }
  GZ_CHECK_MSG(merged.valid(), "no active shards");
  merged.AddUpdates(migrated_updates_);
  return merged;
}

ConnectivityResult ShardedGraphZeppelin::ListSpanningForest() {
  return Connectivity(Snapshot(), base_.query_threads);
}

Result<HeavyHitterSketch> ShardedGraphZeppelin::HeavyHitters() {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->HeavyHitters();
  }
  if (base_.heavy_hitter_width == 0) {
    return Status::FailedPrecondition(
        "heavy-hitter tracking disabled (heavy_hitter_width == 0)");
  }
  // Sum-merge the live shards' side sketches, then the counters
  // captured from removed shards. Merge order is irrelevant to the
  // result (additive grids, sorted candidate serialization).
  HeavyHitterSketch merged;
  for (auto& shard : shards_) {
    if (shard == nullptr) continue;
    const HeavyHitterSketch* hh = shard->heavy_hitters();
    GZ_CHECK(hh != nullptr);
    if (!merged.valid()) {
      merged = *hh;
    } else {
      GZ_CHECK_OK(merged.Merge(*hh));
    }
  }
  if (retired_hh_.valid()) {
    if (!merged.valid()) {
      merged = retired_hh_;
    } else {
      GZ_CHECK_OK(merged.Merge(retired_hh_));
    }
  }
  GZ_CHECK_MSG(merged.valid(), "no active shards");
  return merged;
}

Status ShardedGraphZeppelin::CachedSnapshot(const GraphSnapshot** out) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->CachedSnapshot(out);
  }
  // In-process serving position: each live shard's ingested count plus
  // its fold count — the exact analogue of the cluster's durability
  // bookkeeping, and comparable across modes because both count the
  // same logical events.
  ShardWatermarks marks;
  uint64_t total_updates = migrated_updates_;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] == nullptr) continue;
    ShardWatermark mark;
    mark.num_updates = shards_[s]->num_updates_ingested();
    mark.delta_seq = delta_seq_[s];
    total_updates += mark.num_updates;
    marks.emplace(static_cast<int>(s), mark);
  }
  if (!cache_.Fresh(table_.epoch, marks)) {
    NodeSketchParams params;
    params.num_nodes = base_.num_nodes;
    params.seed = base_.seed;
    params.cols = base_.cols;
    params.rounds = base_.rounds;
    const Status s = cache_.Refresh(
        table_.epoch, marks, total_updates, params,
        [this](int shard, uint64_t lo, uint64_t hi,
               std::vector<uint8_t>* delta) {
          delta->clear();
          delta->reserve(GraphSnapshot::SerializedRangeSizeFor(
              shards_[shard]->sketch_params(), lo, hi));
          return shards_[shard]->WriteNodeRangeTo(
              lo, hi, [delta](const void* data, size_t size) {
                const uint8_t* p = static_cast<const uint8_t*>(data);
                delta->insert(delta->end(), p, p + size);
                return Status::Ok();
              });
        });
    if (!s.ok()) return s;
  }
  *out = &cache_.merged();
  return Status::Ok();
}

StandingQueryRegistry& ShardedGraphZeppelin::standing_queries() {
  return mode_ == Mode::kProcess && cluster_ != nullptr
             ? cluster_->standing_queries()
             : standing_queries_;
}

Result<size_t> ShardedGraphZeppelin::EvaluateStandingQueries(
    int threads, const StandingQueryNotifier& notifier) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->EvaluateStandingQueries(threads, notifier);
  }
  if (standing_queries_.size() == 0) return size_t{0};
  const GraphSnapshot* snap = nullptr;
  const Status s = CachedSnapshot(&snap);
  if (!s.ok()) return s;
  return standing_queries_.Evaluate(*snap, table_.epoch, threads,
                                    notifier);
}

// ---- Elastic resharding ----------------------------------------------------

Result<int> ShardedGraphZeppelin::AddShard(const std::string& endpoint) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->AddShard(endpoint);
  }
  Status ep = RequireLocalEndpoint(endpoint);
  if (!ep.ok()) return ep;
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (ActiveShards().size() >= RoutingTable::kNumSlots) {
    return Status::FailedPrecondition(
        "slot table is full; cannot add another shard");
  }
  const int id = AllocateInProcessShard();
  Status s = shards_[id]->Init();
  if (!s.ok()) {
    shards_.pop_back();
    route_bufs_.pop_back();
    delta_seq_.pop_back();
    return s;
  }
  table_ = TableWithShardAdded(table_, id);
  return id;
}

Status ShardedGraphZeppelin::BeginRemoveShard(int shard) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->BeginRemoveShard(shard);
  }
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (shards_[shard] == nullptr) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  if (ActiveShards().size() < 2) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  table_ = TableWithShardRemoved(table_, shard);
  InProcessMigration m;
  m.remove = true;
  m.source = shard;
  for (const int id : ActiveShards()) {
    if (id != shard) {
      m.target = id;
      break;
    }
  }
  m.next_node = 0;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return Status::Ok();
}

Result<int> ShardedGraphZeppelin::BeginSplitShard(
    int shard, const std::string& endpoint) {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->BeginSplitShard(shard, endpoint);
  }
  Status ep = RequireLocalEndpoint(endpoint);
  if (!ep.ok()) return ep;
  GZ_CHECK(shard >= 0 && shard < num_shards());
  if (shards_[shard] == nullptr) {
    return Status::FailedPrecondition("shard already removed");
  }
  if (migration_.has_value()) {
    return Status::FailedPrecondition(
        "a migration is active; pump it to completion first");
  }
  // Keeps the every-live-shard-owns-a-slot invariant (see cluster).
  if (TableSlotCount(table_, shard) < 2) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " owns too few routing slots to split");
  }
  const int id = AllocateInProcessShard();
  Status s = shards_[id]->Init();
  if (!s.ok()) {
    shards_.pop_back();
    route_bufs_.pop_back();
    delta_seq_.pop_back();
    return s;
  }
  table_ = TableWithShardSplit(table_, shard, id);
  InProcessMigration m;
  m.remove = false;
  m.source = shard;
  m.target = id;
  m.next_node = base_.num_nodes / 2;
  m.end_node = base_.num_nodes;
  migration_ = m;
  return id;
}

Status ShardedGraphZeppelin::PumpMigration() {
  if (!initialized_) return Status::FailedPrecondition("not initialized");
  if (mode_ == Mode::kProcess) {
    DrainPending();
    return cluster_->PumpMigration();
  }
  if (!migration_.has_value()) {
    return Status::FailedPrecondition("no active migration");
  }
  InProcessMigration& m = *migration_;
  if (m.next_node < m.end_node) {
    const uint64_t lo = m.next_node;
    const uint64_t hi = std::min(
        m.end_node, lo + cluster_options_.migrate_nodes_per_chunk);
    // Live extraction, exactly like a shard answering MIGRATE_EXTRACT:
    // the chunk is whatever the source holds for [lo, hi) right now
    // (WriteNodeRangeTo flushes), XOR-installed on the target and
    // XOR-cancelled on the source. A KNOWN delta commutes with
    // whatever ingestion lands between pump steps, so this is exact
    // with no captured copy of the source's full state.
    std::vector<uint8_t> delta;
    delta.reserve(GraphSnapshot::SerializedRangeSizeFor(
        shards_[m.source]->sketch_params(), lo, hi));
    GZ_CHECK_OK(shards_[m.source]->WriteNodeRangeTo(
        lo, hi, [&delta](const void* data, size_t size) {
          const uint8_t* p = static_cast<const uint8_t*>(data);
          delta.insert(delta.end(), p, p + size);
          return Status::Ok();
        }));
    GZ_CHECK_OK(
        shards_[m.target]->MergeSerializedNodeRange(delta.data(),
                                                    delta.size()));
    GZ_CHECK_OK(
        shards_[m.source]->MergeSerializedNodeRange(delta.data(),
                                                    delta.size()));
    // Each fold is one migration delta: content changed with no update
    // count change, which is exactly what the watermark's second
    // component versions (mirrors the cluster's delta_seq_sent_).
    ++delta_seq_[m.target];
    ++delta_seq_[m.source];
    m.next_node = hi;
    return Status::Ok();
  }
  if (m.remove) {
    migrated_updates_ += shards_[m.source]->num_updates_ingested();
    // Mirror the cluster: the retiring shard's additive heavy-hitter
    // counters are not in any migrated delta, so capture them before
    // the instance goes away.
    const HeavyHitterSketch* hh = shards_[m.source]->heavy_hitters();
    if (hh != nullptr) {
      if (!retired_hh_.valid()) {
        retired_hh_ = *hh;
      } else {
        GZ_CHECK_OK(retired_hh_.Merge(*hh));
      }
    }
    shards_[m.source].reset();
  }
  migration_.reset();
  return Status::Ok();
}

bool ShardedGraphZeppelin::migration_active() const {
  return mode_ == Mode::kProcess ? cluster_->migration_active()
                                 : migration_.has_value();
}

int ShardedGraphZeppelin::migration_target() const {
  if (mode_ == Mode::kProcess) return cluster_->migration_target();
  GZ_CHECK(migration_.has_value());
  return migration_->target;
}

Status ShardedGraphZeppelin::RemoveShard(int shard) {
  Status s = BeginRemoveShard(shard);
  while (s.ok() && migration_active()) s = PumpMigration();
  return s;
}

Result<int> ShardedGraphZeppelin::SplitShard(int shard,
                                             const std::string& endpoint) {
  Result<int> id = BeginSplitShard(shard, endpoint);
  if (!id.ok()) return id;
  Status s = Status::Ok();
  while (s.ok() && migration_active()) s = PumpMigration();
  if (!s.ok()) return s;
  return id;
}

int ShardedGraphZeppelin::num_shards() const {
  return mode_ == Mode::kProcess ? cluster_->num_shards()
                                 : static_cast<int>(shards_.size());
}

std::vector<int> ShardedGraphZeppelin::ActiveShards() const {
  if (mode_ == Mode::kProcess) return cluster_->ActiveShards();
  std::vector<int> ids;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] != nullptr) ids.push_back(static_cast<int>(s));
  }
  return ids;
}

uint64_t ShardedGraphZeppelin::updates_in_shard(int shard) {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    Result<ShardStats> r = cluster_->Stats(shard);
    GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
    return r.value().num_updates;
  }
  GZ_CHECK_MSG(shards_[shard] != nullptr, "shard was removed");
  return shards_[shard]->num_updates_ingested();
}

size_t ShardedGraphZeppelin::RamByteSize() {
  if (mode_ == Mode::kProcess) {
    DrainPending();
    size_t total = 0;
    for (const int s : cluster_->ActiveShards()) {
      Result<ShardStats> r = cluster_->Stats(s);
      GZ_CHECK_MSG(r.ok(), r.status().message().c_str());
      total += r.value().ram_bytes;
    }
    return total;
  }
  size_t total = 0;
  for (const auto& shard : shards_) {
    if (shard != nullptr) total += shard->RamByteSize();
  }
  return total;
}

}  // namespace gz
