#include "distributed/shard_transport.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "distributed/shard_process.h"
#include "util/check.h"

namespace gz {

Status ShardTransport::CallAck(ShardMessageType type, const void* payload,
                               size_t payload_bytes, ShardAck* ack) {
  if (fd() < 0) return Status::IoError("shard socket not open");
  Status s = SendFrame(fd(), type, payload, payload_bytes);
  if (!s.ok()) return s;
  bool in_sync = false;
  s = RecvReply(fd(), ShardMessageType::kAck, &reply_buf_, &in_sync);
  if (!s.ok()) return s;
  return DecodeShardAck(reply_buf_.payload.data(), reply_buf_.payload.size(),
                        ack);
}

std::unique_ptr<ShardTransport> MakeShardTransport(
    const ShardEndpoint& endpoint, const ShardTransportOptions& options) {
  if (endpoint.local()) {
    return std::make_unique<ShardProcess>(options.binary, options.log_path,
                                          options.auth_secret);
  }
  return std::make_unique<TcpShardTransport>(endpoint, options.auth_secret);
}

// ---- Child-process plumbing -----------------------------------------------

extern "C" char** environ;

Result<pid_t> SpawnShardChild(const std::string& binary,
                              const std::vector<std::string>& args,
                              const std::string& log_path,
                              const std::string& auth_secret,
                              int inherit_fd) {
  // Everything the child dereferences is materialized BEFORE fork():
  // between fork and exec only async-signal-safe calls are allowed,
  // and that includes no allocation.
  std::vector<const char*> argv;
  argv.push_back(binary.c_str());
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  argv.push_back(nullptr);
  const std::string secret_entry = "GZ_SHARD_AUTH_SECRET=" + auth_secret;
  std::vector<const char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "GZ_SHARD_AUTH_SECRET=", 21) == 0) continue;
    envp.push_back(*e);
  }
  envp.push_back(secret_entry.c_str());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    (void)inherit_fd;  // Stays open (no CLOEXEC on it by contract).
    if (!log_path.empty()) {
      const int log_fd =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        if (log_fd != STDERR_FILENO) ::close(log_fd);
      }
    }
    ::execve(binary.c_str(), const_cast<char* const*>(argv.data()),
             const_cast<char* const*>(envp.data()));
    const char msg[] = "gz_shard exec failed\n";
    const ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
    ::_exit(127);
  }
  return pid;
}

bool ShardChildRunning(pid_t pid, bool* reaped) {
  if (pid < 0 || *reaped) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r == pid) {
    *reaped = true;
    return false;
  }
  return r == 0;
}

void KillShardChild(pid_t pid, bool* reaped) {
  if (pid < 0 || *reaped) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  *reaped = true;
}

// ---- TcpShardTransport ----------------------------------------------------

namespace {

// connect() bounded by a deadline instead of the kernel's SYN-retry
// budget (~2 minutes): a blackholed endpoint — DROP firewall, powered-
// off host on a routed subnet — must fail Start()/RestartShard in
// seconds, not stall them for minutes. True on success; false leaves
// the reason in errno (ETIMEDOUT for the deadline).
bool ConnectWithDeadline(int fd, const struct sockaddr* addr,
                         socklen_t addrlen) {
  constexpr int kConnectTimeoutMs = 10 * 1000;
  const int flags = ::fcntl(fd, F_GETFL);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, addrlen);
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, kConnectTimeoutMs);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      errno = ETIMEDOUT;
      rc = -1;
    } else if (rc > 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      errno = err;
      rc = err == 0 ? 0 : -1;
    }
  }
  const int saved_errno = errno;
  ::fcntl(fd, F_SETFL, flags);  // Back to blocking for the session.
  errno = saved_errno;
  return rc == 0;
}

}  // namespace

TcpShardTransport::TcpShardTransport(ShardEndpoint endpoint,
                                     std::string auth_secret,
                                     ShardSessionRole role)
    : endpoint_(std::move(endpoint)),
      auth_secret_(std::move(auth_secret)),
      role_(role) {
  GZ_CHECK(!endpoint_.local());
}

TcpShardTransport::~TcpShardTransport() { Terminate(); }

void TcpShardTransport::Terminate() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpShardTransport::Connect() {
  Terminate();
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port_str = std::to_string(endpoint_.port);
  struct addrinfo* addrs = nullptr;
  const int rc =
      ::getaddrinfo(endpoint_.host.c_str(), port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::IoError("cannot resolve " + endpoint_.ToString() + ": " +
                           ::gai_strerror(rc));
  }
  // Only connection-refused retries: that is the listener still
  // tearing down its previous session (a restart drill reconnects the
  // instant after it aborted the old connection), and it clears within
  // milliseconds. Anything else — unreachable host, reset, resolution
  // to a dead box — fails fast rather than stalling Start() behind a
  // misconfigured endpoint. Backoff doubles from 10ms, ~3s total.
  Status last = Status::IoError("no addresses for " + endpoint_.ToString());
  useconds_t backoff_us = 10 * 1000;
  for (int attempt = 0; attempt < 9; ++attempt) {
    if (attempt > 0) {
      ::usleep(backoff_us);
      backoff_us = std::min<useconds_t>(backoff_us * 2, 1000 * 1000);
    }
    bool refused = false;
    for (struct addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
      const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
      if (fd < 0) continue;
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      if (ConnectWithDeadline(fd, a->ai_addr, a->ai_addrlen)) {
        TuneShardSocket(fd);
        Status s = ClientHandshake(fd, auth_secret_, role_);
        if (!s.ok()) {
          ::close(fd);
          ::freeaddrinfo(addrs);
          return s;  // Auth/framing failures do not retry.
        }
        fd_ = fd;
        ::freeaddrinfo(addrs);
        return Status::Ok();
      }
      refused = refused || errno == ECONNREFUSED;
      last = Status::IoError("connect " + endpoint_.ToString() + ": " +
                             std::strerror(errno));
      ::close(fd);
    }
    if (!refused) break;
  }
  ::freeaddrinfo(addrs);
  return last;
}

// ---- ListenerShard --------------------------------------------------------

ListenerShard::~ListenerShard() { Stop(); }

bool ListenerShard::Running() { return ShardChildRunning(pid_, &reaped_); }

void ListenerShard::Stop() { KillShardChild(pid_, &reaped_); }

Status ListenerShard::Start(const std::string& binary,
                            const std::string& scratch_dir,
                            const std::string& log_path,
                            const std::string& auth_secret) {
  if (pid_ >= 0 && Running()) {
    return Status::FailedPrecondition("listener shard already running");
  }
  static int counter = 0;
  const std::string port_file = scratch_dir + "/gz_listener_p" +
                                std::to_string(::getpid()) + "_" +
                                std::to_string(counter++) + ".port";
  ::unlink(port_file.c_str());
  Result<pid_t> pid = SpawnShardChild(
      binary, {"--listen", "127.0.0.1:0", "--port-file", port_file},
      log_path, auth_secret);
  if (!pid.ok()) return pid.status();
  pid_ = pid.value();
  reaped_ = false;
  // The child publishes the kernel-assigned port once bound; poll for
  // it (the write is tiny and atomic via rename on the child side).
  for (int attempt = 0; attempt < 1500; ++attempt) {
    FILE* f = std::fopen(port_file.c_str(), "rb");
    if (f != nullptr) {
      long port = 0;
      const int matched = std::fscanf(f, "%ld", &port);
      std::fclose(f);
      if (matched == 1 && port > 0 && port <= 65535) {
        port_ = static_cast<uint16_t>(port);
        ::unlink(port_file.c_str());
        return Status::Ok();
      }
    }
    if (!Running()) break;
    ::usleep(10 * 1000);
  }
  Stop();
  ::unlink(port_file.c_str());
  return Status::IoError("listener shard did not publish a port (see " +
                         (log_path.empty() ? std::string("its stderr")
                                           : log_path) +
                         ")");
}

Status StartListenerShards(const std::string& binary, int count,
                           const std::string& scratch_dir,
                           const std::string& log_prefix,
                           const std::string& auth_secret,
                           std::vector<std::unique_ptr<ListenerShard>>* fleet,
                           std::vector<std::string>* endpoints) {
  for (int i = 0; i < count; ++i) {
    auto listener = std::make_unique<ListenerShard>();
    const std::string log =
        log_prefix.empty()
            ? std::string()
            : log_prefix + std::to_string(fleet->size()) + ".log";
    Status s = listener->Start(binary, scratch_dir, log, auth_secret);
    if (!s.ok()) {
      return Status(s.code(), "listener shard " +
                                  std::to_string(fleet->size()) + ": " +
                                  s.message());
    }
    endpoints->push_back(listener->endpoint());
    fleet->push_back(std::move(listener));
  }
  return Status::Ok();
}

}  // namespace gz
