// ShardCluster: the multi-process coordinator. Owns N gz_shard worker
// processes (one GraphZeppelin each, same seed/geometry), routes update
// spans to them by the shared edge hash, aggregates query-time snapshot
// replies with the GraphSnapshot merge algebra, and manages shard
// lifecycle: spawn, health checks, checkpoints, orderly shutdown, and
// restart-from-checkpoint of a crashed shard.
//
// Durability model: the coordinator retains every update sent to a
// shard since that shard's last acknowledged checkpoint (its "unacked"
// log). A shard that dies mid-stream is restarted from its checkpoint
// and the log is replayed — sketch linearity makes the rebuilt state
// bitwise-identical to a run that never crashed. Updates routed to a
// down shard buffer in the same log, so ingestion never stalls on a
// failure; only Flush/Snapshot/Checkpoint require every shard healthy.
#ifndef GZ_DISTRIBUTED_SHARD_CLUSTER_H_
#define GZ_DISTRIBUTED_SHARD_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_snapshot.h"
#include "core/graph_zeppelin.h"
#include "distributed/shard_process.h"
#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

struct ShardClusterOptions {
  // Path of the gz_shard binary; empty = DefaultShardBinary().
  std::string shard_binary;
  // Where shard checkpoints live; empty = the base config's disk_dir.
  std::string checkpoint_dir;
  // Where shard stderr logs go; empty = $GZ_SHARD_LOG_DIR, falling back
  // to the base config's disk_dir. CI points this at an artifact dir.
  std::string log_dir;
  // Auto-checkpoint cadence: after this many routed updates the next
  // Update() call checkpoints every shard (best-effort), truncating the
  // unacked logs so coordinator memory stays bounded by the interval
  // instead of growing with the stream. 0 = manual Checkpoint() only.
  uint64_t checkpoint_interval_updates = 1 << 22;
};

struct ShardStats {
  uint64_t num_updates = 0;
  uint64_t ram_bytes = 0;
};

class ShardCluster {
 public:
  // `base` configures every shard (same num_nodes and sketch seed;
  // per-shard instance tags are added automatically).
  ShardCluster(const GraphZeppelinConfig& base, int num_shards,
               ShardClusterOptions options = {});
  // Best-effort orderly shutdown, then removes shard checkpoints.
  ~ShardCluster();
  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  // Spawns and configures every shard process.
  Status Start();

  // Shard an update routes to; identical to the in-process router.
  int ShardFor(const Edge& e) const {
    return RouteToShard(e, base_.num_nodes, num_shards());
  }

  // Routes the span: each shard's slice is appended to its unacked log,
  // then framed (scatter-gather, no copy) onto its socket. A shard that
  // fails mid-send is marked down and its updates stay buffered; the
  // call still returns Ok because no update was lost. Restart the shard
  // to drain its backlog.
  Status Update(const GraphUpdate* updates, size_t count);
  Status Update(const GraphUpdate& update) { return Update(&update, 1); }

  // Barriers (all shards must be healthy).
  Status Flush();
  // Aggregated query surface: streams every shard's serialized snapshot
  // back and XOR-folds the replies (one deserialized snapshot plus one
  // scratch sketch in flight).
  Result<GraphSnapshot> Snapshot();
  // Checkpoints every shard. Each shard's unacked log is truncated as
  // its ack arrives — commits are per-shard, so a failure on one shard
  // leaves the others' coordinator state consistent with their disk
  // checkpoints (a shard whose checkpoint landed but whose ack was
  // lost is reconciled at restart; see RestartShard).
  Status Checkpoint();

  // Lifecycle.
  // Liveness per shard: process running and answering pings.
  std::vector<bool> HealthCheck();
  // SIGKILL (fault injection / fencing); updates keep buffering.
  void KillShard(int shard);
  // Respawn `shard`, restore its last checkpoint (if any), replay its
  // unacked log. Afterwards the shard is exactly where it would be had
  // it never died.
  Status RestartShard(int shard);
  // Orderly shutdown of every live shard (kShutdown + reap).
  Status Shutdown();

  Result<ShardStats> Stats(int shard);

  int num_shards() const { return static_cast<int>(procs_.size()); }
  bool shard_down(int shard) const { return down_[shard]; }
  uint64_t unacked_updates(int shard) const {
    return unacked_[shard].size();
  }

 private:
  // Spawns + configures; `restored` receives the shard's stream
  // position after any checkpoint restore.
  Status SpawnAndConfigure(int shard, bool restore, uint64_t* restored);
  std::string CheckpointPath(int shard) const;
  std::string LogPath(int shard) const;
  GraphZeppelinConfig ShardConfigFor(int shard) const;
  // The one pipelined-barrier implementation every cluster-wide
  // operation shares: sends `type` (payload from `payload_for`, if
  // given) to every shard, then collects a reply from EVERY shard that
  // got a request — even after a failure, so no reply is ever left
  // queued to desync a later barrier. A shard is fenced (down_) only
  // when its connection lost sync, not on an application-level kError.
  // `on_reply` (optional) runs per well-formed `expected_reply` frame;
  // its error fails the barrier without fencing. Returns the first
  // error encountered.
  Status PipelinedBarrier(
      ShardMessageType type, ShardMessageType expected_reply,
      const std::function<std::string(int shard)>& payload_for,
      const std::function<Status(int shard, const ShardFrame& reply)>&
          on_reply);
  Status RequireAllHealthy();

  GraphZeppelinConfig base_;
  ShardClusterOptions options_;
  std::string binary_;
  std::string log_dir_;
  bool started_ = false;

  std::vector<std::unique_ptr<ShardProcess>> procs_;
  std::vector<bool> down_;
  // Per-shard routing buffers (capacity persists across spans).
  std::vector<std::vector<GraphUpdate>> route_bufs_;
  // Per-shard updates sent since the last acked checkpoint.
  std::vector<std::vector<GraphUpdate>> unacked_;
  std::vector<bool> has_checkpoint_;
  // Stream position of each shard's last ACKED checkpoint; the on-disk
  // file may be newer if an ack was lost to a crash.
  std::vector<uint64_t> checkpoint_updates_;
  uint64_t updates_since_checkpoint_ = 0;  // Drives auto-checkpointing.
  ShardFrame reply_buf_;  // Reused for pipelined replies.
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_CLUSTER_H_
