// ShardCluster: the multi-process coordinator. Owns N gz_shard worker
// processes (one GraphZeppelin each, same seed/geometry), routes update
// spans to them through a versioned slot table, aggregates query-time
// snapshot replies with the GraphSnapshot merge algebra, and manages
// shard lifecycle: spawn, health checks, checkpoints, orderly shutdown,
// restart-from-checkpoint of a crashed shard — and elastic resharding:
// shards can be added, removed or split WITHOUT pausing the stream.
//
// Durability model: the coordinator retains every update sent to a
// shard since that shard's last acknowledged checkpoint (its "unacked"
// log), plus every migration delta sent since then (its "pending
// delta" log, with a per-shard sequence number the shard persists in
// its checkpoint header). A shard that dies mid-stream is restarted
// from its checkpoint and both logs are replayed — sketch linearity
// makes replay order irrelevant and the rebuilt state bitwise-identical
// to a run that never crashed. Updates routed to a down shard buffer in
// the same log, so ingestion never stalls on a failure; only
// Flush/Snapshot/Checkpoint require every shard healthy.
//
// Replication model: with replication_factor R > 1 every shard id is
// backed by R replica processes. Each routed slab fans out to every
// replica (each with its own unacked/pending-delta log), so all live
// replicas of a shard are bitwise-identical at all times; folds
// (Snapshot, the serving cache) read any ONE live replica per shard
// and fail over past dead ones. The repair path is anti-entropy, not
// replay: Reconcile() pulls node-range chunks from a position-verified
// reference replica and from the suspect, XOR-diffs them, and folds
// exactly the difference into whichever copy is behind. Because the
// diff is linear it commutes with concurrent ingestion and with an
// in-flight migration — a killed replica rejoins by reconnect +
// reconcile with zero stream pause, no checkpoint restore, no replay.
// R = 1 is bitwise-identical to the pre-replication cluster.
//
// Elasticity model: routing is a pure function of (edge, table); see
// RoutingTable. A reshard bumps the table's epoch, broadcasts it, and
// then — for RemoveShard/SplitShard — migrates sketch state in
// node-range chunks: each chunk is extracted from the source (read-only
// RPC), XOR-folded into the target, and XOR-folded BACK into the source
// to cancel it there. Because every step is a linear XOR, a chunk
// "move" commutes with concurrent ingestion and with crash-replay;
// there is no flush barrier, no destructive clear, and the global
// folded snapshot is exact at every chunk boundary. Migration advances
// one chunk per PumpMigration() call, so the caller interleaves
// Update() freely — zero stream pause.
#ifndef GZ_DISTRIBUTED_SHARD_CLUSTER_H_
#define GZ_DISTRIBUTED_SHARD_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_snapshot.h"
#include "core/graph_zeppelin.h"
#include "core/snapshot_cache.h"
#include "core/standing_query.h"
#include "distributed/shard_endpoint.h"
#include "distributed/shard_process.h"
#include "distributed/shard_protocol.h"
#include "distributed/shard_transport.h"
#include "util/status.h"

namespace gz {

struct ShardClusterOptions {
  // Path of the gz_shard binary; empty = DefaultShardBinary().
  std::string shard_binary;
  // Where each replica lives: "local:" (fork/exec, the default) or
  // "tcp://host:port" (a running `gz_shard --listen`). Shard-major with
  // replication_factor consecutive entries per shard id —
  // [s0r0, s0r1, s1r0, s1r1, ...]; shorter than num_shards *
  // replication_factor = the rest are local. See shard_endpoint.h for
  // the grammar; a malformed entry fails Start().
  std::vector<std::string> shard_endpoints;
  // Shared handshake secret, proven by every connection in both
  // directions (HMAC challenge–response; see shard_protocol.h). Local
  // children receive it through their environment; tcp listeners must
  // have been started with the same secret. "" = open (trusted
  // transport).
  std::string auth_secret;
  // Where shard checkpoints live; empty = the base config's disk_dir.
  std::string checkpoint_dir;
  // Where shard stderr logs go; empty = $GZ_SHARD_LOG_DIR, falling back
  // to the base config's disk_dir. CI points this at an artifact dir.
  std::string log_dir;
  // Replicas per shard id, 1..RoutingTable::kMaxReplication. Every
  // routed slab fans out to all replicas; queries fold from any live
  // one. 1 (the default) = no replication, bitwise-identical to the
  // pre-replication cluster.
  int replication_factor = 1;
  // Auto-checkpoint cadence: after this many routed updates the next
  // Update() call checkpoints every shard (best-effort), truncating the
  // unacked logs so coordinator memory stays bounded by the interval
  // instead of growing with the stream. 0 = manual Checkpoint() only.
  uint64_t checkpoint_interval_updates = 1 << 22;
  // Anti-entropy cadence: after this many routed updates the next
  // Update() call runs Reconcile() (best-effort), re-converging any
  // replica that died or diverged. 0 = manual Reconcile() only.
  uint64_t reconcile_interval_updates = 0;
  // Node-range granularity of one PumpMigration() step and of one
  // Reconcile() diff chunk. Smaller chunks mean more interleaving
  // opportunities for Update() (and finer kill points in fault tests)
  // at more RPCs.
  uint64_t migrate_nodes_per_chunk = 1 << 16;
};

struct ShardStats {
  uint64_t num_updates = 0;
  uint64_t ram_bytes = 0;
  // The routing epoch the shard is at and its migration-delta count —
  // together with num_updates, the shard's serving watermark (see
  // snapshot_cache.h): equal watermarks at equal epochs imply
  // bitwise-equal sketch content.
  uint64_t epoch = 0;
  uint64_t delta_seq = 0;
};

class ShardCluster {
 public:
  // `base` configures every shard (same num_nodes and sketch seed;
  // per-shard instance tags are added automatically).
  ShardCluster(const GraphZeppelinConfig& base, int num_shards,
               ShardClusterOptions options = {});
  // Best-effort orderly shutdown, then removes shard checkpoints.
  ~ShardCluster();
  ShardCluster(const ShardCluster&) = delete;
  ShardCluster& operator=(const ShardCluster&) = delete;

  // Spawns and configures every shard process (all replicas).
  Status Start();

  // Shard an update routes to under the current table; identical to the
  // in-process router and to any external partitioner holding the same
  // table.
  int ShardFor(const Edge& e) const {
    return RouteToShard(e, base_.num_nodes, table_);
  }
  const RoutingTable& routing_table() const { return table_; }

  // Routes the span: each shard's slice is appended to every replica's
  // unacked log, then framed (scatter-gather, no copy, stamped with the
  // routing epoch) onto each live replica's socket. A replica that
  // fails mid-send is fenced and its updates stay buffered; the call
  // still returns Ok because no update was lost. Reconcile() (or
  // RestartShard()) drains the backlog.
  Status Update(const GraphUpdate* updates, size_t count);
  Status Update(const GraphUpdate& update) { return Update(&update, 1); }

  // Barriers (every replica of every shard must be healthy).
  Status Flush();
  // Aggregated query surface: streams one live replica per shard's
  // serialized snapshot back and XOR-folds the replies (one
  // deserialized snapshot plus one scratch sketch in flight). Exact
  // even mid-migration: chunk moves are install+cancel pairs, so the
  // global XOR never double-counts. Survives dead replicas as long as
  // every shard keeps one live one.
  Result<GraphSnapshot> Snapshot();
  // Aggregated heavy-hitter surface: folds one live replica per
  // shard's serialized HeavyHitterSketch (sum-merge — the CM grids are
  // linear and routing partitions edges disjointly) plus the counters
  // captured from retired shards, yielding exactly — bitwise, thanks
  // to canonical serialization — the single-process sketch over the
  // whole stream. FailedPrecondition when the cluster was configured
  // with heavy_hitter_width == 0. Two documented gaps: CM counters are
  // not part of checkpoints (a restore+replay repair recovers only the
  // unacked tail's counts) and are not repaired by anti-entropy
  // (Reconcile moves XOR sketch content, not additive counters).
  Result<HeavyHitterSketch> HeavyHitters();
  // Checkpoints every replica of every shard. Each replica's unacked
  // log and pending-delta log are truncated as its ack arrives —
  // commits are per-replica, so a failure on one leaves the others'
  // coordinator state consistent with their disk checkpoints (a
  // replica whose checkpoint landed but whose ack was lost is
  // reconciled at restart; see RestartShard).
  Status Checkpoint();

  // --- Replication ---------------------------------------------------------
  // Anti-entropy pass. Per shard: picks a reference replica whose
  // reported position matches the coordinator's books exactly, then for
  // every other replica pulls node-range chunks from both sides and
  // XOR-diffs them; a chunk that differs is folded — as exactly the
  // difference — into the suspect. A fenced replica is respawned EMPTY
  // first and repaired from zero: rejoin is reconnect + reconcile, not
  // checkpoint-restore + replay. Repair deltas are deliberately NOT
  // logged: a completed repair is anchored by a position sync plus the
  // replica's own checkpoint, and a crash mid-repair leaves the replica
  // fenced with its classic restore+replay lineage untouched — either
  // path converges. Linear diffs commute with concurrent ingestion and
  // with an in-flight migration, so the stream never pauses.
  // `repaired_chunks` (optional) counts chunks whose content differed.
  Status Reconcile(uint64_t* repaired_chunks = nullptr);
  // Replica count per shard (ShardClusterOptions::replication_factor).
  int replication() const { return replication_; }
  // Hard-stop ONE replica (KillShard kills all of them). With
  // observed=false the coordinator does NOT fence it — a spontaneous
  // crash it has not detected yet.
  void KillReplica(int shard, int replica, bool observed = true);
  bool replica_down(int shard, int replica) const {
    return down_[shard][replica];
  }
  // Test hook: folds `delta_bytes` (a serialized node-range delta) into
  // one replica as an UNLOGGED kMergeDelta — silent divergence, exactly
  // the corruption Reconcile() exists to detect and repair.
  Status CorruptReplicaForTest(int shard, int replica,
                               const std::vector<uint8_t>& delta_bytes);

  // --- Elastic resharding --------------------------------------------------
  // Adds a fresh shard (new highest id) at `endpoint` ("" = all
  // replicas local; with replication a comma-separated list places each
  // replica — this is how a cluster grows onto other machines):
  // connects it, rebalances slots to it, bumps + broadcasts the epoch.
  // No state migrates — the new shard starts empty and linearity makes
  // that exact. Returns the new id.
  Result<int> AddShard(const std::string& endpoint = std::string());
  // Starts removing `shard`: its slots are dealt to the remaining
  // shards (epoch bump, broadcast), then PumpMigration() drains its
  // state chunk-by-chunk into a successor and finally shuts it down.
  Status BeginRemoveShard(int shard);
  // Starts splitting `shard`: a fresh shard (new highest id, at
  // `endpoint` like AddShard) takes half its slots (epoch bump,
  // broadcast), then PumpMigration() moves the upper half of the node
  // range of its accumulated state across. Returns the new shard's id.
  Result<int> BeginSplitShard(int shard,
                              const std::string& endpoint = std::string());
  // Advances the active migration by one step (one node-range chunk,
  // or the final shutdown/bookkeeping step). Interleave with Update()
  // at will. On a shard failure the step's effects are already in the
  // durability logs: RestartShard() the fenced shard, then keep
  // pumping — the migration converges to the same bytes.
  Status PumpMigration();
  bool migration_active() const { return migration_.has_value(); }
  int migration_source() const;
  int migration_target() const;
  // Synchronous conveniences: Begin* + pump to completion.
  Status RemoveShard(int shard);
  Result<int> SplitShard(int shard,
                         const std::string& endpoint = std::string());

  // Lifecycle.
  // Liveness per shard id: every replica's transport alive and
  // answering pings (removed ids report false).
  std::vector<bool> HealthCheck();
  // Hard-stop for fault injection / fencing — SIGKILL for a local
  // shard, connection abort for a tcp one (the listener drops its
  // instance, the same state loss); updates keep buffering. Kills
  // every replica of the shard. With observed=false the coordinator
  // does NOT fence the shard — modeling a spontaneous crash it has not
  // detected yet, so tests can drive the paths that must self-fence on
  // a failed send.
  void KillShard(int shard, bool observed = true);
  // Respawn one replica, restore its last checkpoint (if any), replay
  // its unacked updates and its pending migration deltas (the
  // checkpoint's stream position and delta sequence number say exactly
  // which are already covered). Afterwards the replica is exactly
  // where it would be had it never died. This is the classic
  // restore+replay repair; Reconcile() is the anti-entropy alternative.
  Status RestartReplica(int shard, int replica);
  // RestartReplica over every replica of `shard`.
  Status RestartShard(int shard);
  // Orderly shutdown of every live shard (kShutdown + reap).
  Status Shutdown();

  Result<ShardStats> Stats(int shard);

  // --- Serving tier ----------------------------------------------------------
  // Like Snapshot(), but answered from the epoch/watermark-keyed
  // SnapshotCache: O(1) — zero RPCs — while the cluster position is
  // unchanged since the last call, and node-delta pulls from ONLY the
  // shards whose watermark moved otherwise (a reshard refreshes by
  // pulling the moved shards, never a full re-fold). Bitwise identical
  // to Snapshot() at the same (epoch, watermarks) position — enforced
  // by tests. *out stays valid until the next CachedSnapshot() call or
  // cluster mutation. Watermarks come from the coordinator's own
  // durability bookkeeping, so no barrier runs: a query can even be
  // served at the last position while a shard is down, as long as
  // nothing moved; a refresh pulls from any live replica and fails only
  // when a shard has none.
  Status CachedSnapshot(const GraphSnapshot** out);
  // The cluster's current serving position: per-shard watermarks from
  // the durability logs (checkpointed + unacked updates, deltas sent).
  ShardWatermarks Watermarks() const;
  const SnapshotCache& snapshot_cache() const { return cache_; }

  // Standing queries, coordinator-driven: register specs here, then
  // call EvaluateStandingQueries() wherever the stream pauses (between
  // batches, after a reshard step). One CachedSnapshot() refresh + one
  // fold serves every registered query; `notifier` fires once per
  // changed answer (see core/standing_query.h for the contract).
  // Returns the number of notifications fired. Single-driver, like
  // every other coordinator call.
  StandingQueryRegistry& standing_queries() { return standing_queries_; }
  Result<size_t> EvaluateStandingQueries(
      int threads, const StandingQueryNotifier& notifier);

  // Size of the shard-id space (ids are never reused; removed ids stay
  // allocated). Equals the active count until the first RemoveShard.
  int num_shards() const { return static_cast<int>(procs_.size()); }
  // Ids of shards that currently exist, ascending.
  std::vector<int> ActiveShards() const;
  int num_active_shards() const;
  bool shard_removed(int shard) const { return procs_[shard].empty(); }
  // A shard counts as down when ANY of its replicas is fenced (the
  // all-replica barriers refuse it).
  bool shard_down(int shard) const {
    for (const bool d : down_[shard]) {
      if (d) return true;
    }
    return false;
  }
  uint64_t unacked_updates(int shard) const {
    return unacked_[shard][0].size();
  }
  uint64_t pending_delta_count(int shard) const {
    return pending_deltas_[shard][0].size();
  }

 private:
  struct PendingDelta {
    uint64_t seq = 0;  // 1-based per-replica kMergeDelta sequence number.
    std::vector<uint8_t> bytes;
  };
  struct Migration {
    enum class Kind { kRemove, kSplit };
    Kind kind = Kind::kRemove;
    int source = -1;
    int target = -1;
    uint64_t next_node = 0;  // First node of the next chunk.
    uint64_t end_node = 0;   // One past the last node to migrate.
  };
  // Which replicas a barrier touches: every replica of every shard
  // (mutations: flush, checkpoint, epoch) or one live replica per
  // shard (read-only folds: snapshot).
  enum class BarrierScope { kAllReplicas, kOnePerShard };

  // Connects + configures one replica; `restored` /
  // `restored_delta_seq` receive its stream position and delta
  // sequence number after any checkpoint restore.
  Status SpawnAndConfigure(int shard, int replica, bool restore,
                           uint64_t* restored, uint64_t* restored_delta_seq);
  std::string CheckpointPath(int shard, int replica) const;
  std::string LogPath(int shard, int replica) const;
  GraphZeppelinConfig ShardConfigFor(int shard, int replica) const;
  // Transport for one replica from endpoints_[shard][replica]
  // (local -> fork/exec, tcp -> connect).
  std::unique_ptr<ShardTransport> MakeTransportFor(int shard,
                                                   int replica) const;
  // "" = all local; otherwise a comma-separated endpoint list, at most
  // one entry per replica (missing entries are local).
  Result<std::vector<ShardEndpoint>> ParseReplicaEndpoints(
      const std::string& endpoint) const;
  // Grows every per-shard vector for a freshly allocated id, recording
  // its replicas' endpoints.
  int AllocateShardSlot(std::vector<ShardEndpoint> endpoints);
  // Rolls a just-allocated (still-last) id back out after a failed
  // spawn, keeping id assignment in lockstep with the in-process mode.
  void ReleaseLastShardSlot(int id);
  // Lowest-index replica of `shard` the coordinator has not fenced
  // (-1 if none). What the send paths target.
  int FirstUnfencedReplica(int shard) const;
  // Lowest-index replica that is unfenced AND whose transport is still
  // alive (-1 if none). What the fold paths target.
  int FirstLiveReplica(int shard);
  // Sends the current table to every replica (kEpoch barrier).
  Status BroadcastTable();
  // kMergeDelta RPC to one replica; fences it on failure (transport
  // loss or a diverged shard — either way repair re-delivers).
  Status SendDelta(int shard, int replica, const std::vector<uint8_t>& bytes);
  // Sends one epoch-stamped update frame chain for `buf[off..)`.
  Status SendUpdateFrames(int shard, int replica, const GraphUpdate* updates,
                          size_t count);
  // The one pipelined-barrier implementation every cluster-wide
  // operation shares: sends `type` (payload from `payload_for`, if
  // given) to every targeted replica, then collects a reply from EVERY
  // replica that got a request — even after a failure, so no reply is
  // ever left queued to desync a later barrier. A replica is fenced
  // (down_) only when its connection lost sync, not on an
  // application-level kError. `on_reply` (optional) runs per
  // well-formed `expected_reply` frame; its error fails the barrier
  // without fencing. Returns the first error encountered.
  Status PipelinedBarrier(
      ShardMessageType type, ShardMessageType expected_reply,
      const std::function<std::string(int shard, int replica)>& payload_for,
      const std::function<Status(int shard, int replica,
                                 const ShardFrame& reply)>& on_reply,
      BarrierScope scope = BarrierScope::kAllReplicas);
  Status RequireAllHealthy();
  // One STATS_EX round trip to one replica; fences it on failure.
  Status ReplicaStatsEx(int shard, int replica, ShardStatsEx* ex);
  // kMigrateExtract -> kMigrateData pull of [lo, hi) from one replica;
  // fences it on failure. Read-only on the shard.
  Status ExtractRange(int shard, int replica, uint64_t lo, uint64_t hi,
                      std::vector<uint8_t>* bytes);
  // Per-replica kCheckpoint RPC, committing the coordinator's books for
  // that replica exactly as the cluster-wide Checkpoint() barrier does.
  Status CheckpointReplica(int shard, int replica);
  // Reconcile's inner loop: repair `replica` against `reference`.
  Status RepairReplica(int shard, int replica, int reference,
                       uint64_t expected_updates, GraphSnapshot* scratch,
                       uint64_t* repaired_chunks);

  GraphZeppelinConfig base_;
  ShardClusterOptions options_;
  std::string binary_;
  std::string log_dir_;
  int replication_ = 1;
  // A malformed options_.shard_endpoints entry (or replication factor),
  // reported by Start() (the constructor cannot return a Status).
  Status endpoint_error_;
  bool started_ = false;

  RoutingTable table_;
  // Outer index = shard id (empty marks a removed id — never reused);
  // inner index = replica.
  std::vector<std::vector<std::unique_ptr<ShardTransport>>> procs_;
  // Where each replica lives (kept for removed ids too; the id space
  // never shrinks).
  std::vector<std::vector<ShardEndpoint>> endpoints_;
  std::vector<std::vector<bool>> down_;
  // Per-shard routing buffers (capacity persists across spans); one per
  // shard, not per replica — the fan-out happens at send time.
  std::vector<std::vector<GraphUpdate>> route_bufs_;
  // Per-replica updates sent since that replica's last acked
  // checkpoint. All replicas of a shard carry the same SUM of
  // checkpointed + unacked updates; the split point is per-replica.
  std::vector<std::vector<std::vector<GraphUpdate>>> unacked_;
  // Per-replica migration deltas sent since the last acked checkpoint,
  // with the sequence numbers the shard's checkpoint header reconciles
  // against on restart.
  std::vector<std::vector<std::vector<PendingDelta>>> pending_deltas_;
  std::vector<std::vector<uint64_t>> delta_seq_sent_;  // Total ever sent.
  std::vector<std::vector<uint64_t>> checkpoint_delta_seq_;  // At last ack.
  std::vector<std::vector<bool>> has_checkpoint_;
  // Stream position of each replica's last ACKED checkpoint; the
  // on-disk file may be newer if an ack was lost to a crash.
  std::vector<std::vector<uint64_t>> checkpoint_updates_;
  // Stream positions of removed shards: their ingested counts fold into
  // every Snapshot() so the aggregate update count survives removal.
  uint64_t migrated_updates_ = 0;
  // Heavy-hitter counters of removed shards, captured before their
  // processes retire (migration deltas carry XOR sketch content only,
  // never additive CM counters) and folded into every HeavyHitters()
  // answer. Invalid until the first removal of a tracking shard.
  HeavyHitterSketch retired_hh_;
  std::optional<Migration> migration_;
  uint64_t updates_since_checkpoint_ = 0;  // Drives auto-checkpointing.
  uint64_t updates_since_reconcile_ = 0;   // Drives periodic anti-entropy.
  ShardFrame reply_buf_;  // Reused for pipelined replies.
  // The serving tier's merged-snapshot cache (see CachedSnapshot()).
  SnapshotCache cache_;
  StandingQueryRegistry standing_queries_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_CLUSTER_H_
