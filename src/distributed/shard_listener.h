// ShardListener: the multi-session server behind `gz_shard --listen`.
//
// One listener owns one shard instance (ShardInstanceState) and serves
// it to many concurrent sessions: at most ONE authenticated writer —
// the coordinator, full protocol, byte-identical to the single-session
// server — plus any number of authenticated readers (bounded by
// max_sessions) issuing read-only frames (PING / STATS / STATS_EX /
// SNAPSHOT / MIGRATE_EXTRACT). That asymmetry is the whole design: the
// ingest path stays a single FIFO stream (which is what makes shard
// state a pure function of its watermark), while the serving tier
// scales out by adding reader sessions.
//
// Concurrency: the accept loop runs on the caller's thread (poll on
// the listen socket plus a stop pipe); each accepted connection gets a
// session thread. The authentication handshake runs INSIDE the session
// thread, so a peer that connects and stalls pre-auth occupies one
// bounded session slot for at most the handshake deadline — it can
// never wedge the accept loop (the single-session listener's DoS
// window). Sessions over max_sessions are refused with a clean kError
// before any handshake work.
//
// Lifecycle: the writer's orderly kShutdown retires the listener —
// remaining reader sessions are shut down, everything joins, Run()
// returns Ok. A writer that drops mid-session discards the in-memory
// instance (exactly the state loss of a SIGKILLed local shard — the
// coordinator recovers it by reconnect + restore + replay) but reader
// sessions survive, observing an unconfigured shard until the writer
// returns. Reader disconnects never affect anything.
#ifndef GZ_DISTRIBUTED_SHARD_LISTENER_H_
#define GZ_DISTRIBUTED_SHARD_LISTENER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "distributed/shard_server.h"
#include "util/status.h"

namespace gz {

struct ShardListenerOptions {
  // host:port to bind; port 0 asks the kernel for a free port.
  std::string listen;
  // When non-empty, the bound port is published here (write-then-
  // rename) once listening — how harnesses discover a port-0 bind.
  std::string port_file;
  // Shared handshake secret; "" serves unauthenticated (trusted
  // networks only).
  std::string auth_secret;
  // Bound on concurrent sessions (writer + readers + any still in
  // handshake). Connections beyond it are refused with kError
  // kResourceExhausted and closed — the bound is what keeps a
  // connection flood from exhausting threads/fds.
  int max_sessions = 17;  // 1 writer + 16 readers.
  // Per-read deadline for established reader sessions: once a frame
  // starts arriving, every read must complete within this many
  // seconds. Idle time between requests is not limited.
  int reader_timeout_seconds = 30;
};

class ShardListener {
 public:
  explicit ShardListener(ShardListenerOptions options)
      : options_(std::move(options)) {}
  ~ShardListener();

  ShardListener(const ShardListener&) = delete;
  ShardListener& operator=(const ShardListener&) = delete;

  // Resolves, binds and listens on options_.listen, then publishes the
  // port file (if requested). Must be called (successfully) before
  // Run().
  Status Bind();

  // The bound port, valid after Bind(). With an explicit port this
  // echoes it; with port 0 it is the kernel's pick.
  uint16_t port() const { return port_; }

  // Serves sessions until the writer's orderly kShutdown (returns Ok)
  // or a fatal listener error. Joins every session thread before
  // returning, so the caller may destroy the listener immediately
  // after.
  Status Run();

 private:
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // Session-thread body: handshake, writer-slot claim or reader loop,
  // state reset on writer disconnect.
  void RunSession(Session* session);
  // Joins and closes every finished session; returns the live count.
  // Caller holds mu_.
  size_t SweepSessionsLocked();

  ShardListenerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  ShardInstanceState state_;

  std::mutex mu_;  // Guards sessions_, writer_active_, writer_status_.
  std::list<Session> sessions_;
  bool writer_active_ = false;
  // Signaled when the writer slot drains (and at wind-down): a
  // coordinator that reconnects right after dropping its old session —
  // kill/restart, replica repair — races the old session thread's EOF
  // observation, so a new writer waits briefly for the slot instead of
  // being refused over a doomed predecessor.
  std::condition_variable writer_cv_;
  bool stopping_ = false;
  // Set when a writer session ends with an orderly kShutdown; what
  // Run() returns.
  bool shutdown_requested_ = false;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_LISTENER_H_
