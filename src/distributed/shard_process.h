// The local: transport — one implementation of ShardTransport, no
// longer the hard-coded substrate of ShardCluster. Connect() fork/execs
// gz_shard over a fresh socketpair and authenticates; Terminate() is
// SIGKILL + reap. Lifecycle (spawn order, checkpoint paths, replay)
// lives a layer up in ShardCluster.
#ifndef GZ_DISTRIBUTED_SHARD_PROCESS_H_
#define GZ_DISTRIBUTED_SHARD_PROCESS_H_

#include <string>

#include <sys/types.h>

#include "distributed/shard_transport.h"
#include "util/status.h"

namespace gz {

// Absolute path of the gz_shard binary: $GZ_SHARD_BIN if set, else
// next to the calling executable (all build targets share one bin dir).
std::string DefaultShardBinary();

class ShardProcess : public ShardTransport {
 public:
  // The child's stderr is redirected (append) to `log_path` so shard
  // logs survive a crash for post-mortem (CI uploads them on failure).
  // `auth_secret` is pinned into the child's environment — never argv,
  // which /proc exposes world-readable — and exists so a mixed cluster
  // (local + tcp shards) speaks one secret everywhere.
  ShardProcess(std::string binary, std::string log_path,
               std::string auth_secret);
  // Kills and reaps a still-running child; orderly shutdown is the
  // cluster's job.
  ~ShardProcess() override;
  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  // fork/execs `binary --fd N` with one end of a fresh socketpair as fd
  // N, then runs the client handshake.
  Status Connect() override;

  // True while the child has neither exited nor been reaped.
  bool Alive() override;

  // SIGKILL + reap; idempotent. The socket stays open so queued replies
  // can be drained, but any further call fails with IoError.
  void Terminate() override;

  int fd() const override { return fd_; }
  std::string Describe() const override { return "local:" + binary_; }

  pid_t pid() const { return pid_; }
  const std::string& log_path() const { return log_path_; }

 private:
  void CloseSocket();

  std::string binary_;
  std::string log_path_;
  std::string auth_secret_;
  pid_t pid_ = -1;
  int fd_ = -1;
  bool reaped_ = false;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_PROCESS_H_
