// Coordinator-side handle for one gz_shard worker process: owns the
// child pid and the connected socket, and wraps the request/reply
// half of the protocol. Lifecycle (spawn order, checkpoint paths,
// replay) lives a layer up in ShardCluster.
#ifndef GZ_DISTRIBUTED_SHARD_PROCESS_H_
#define GZ_DISTRIBUTED_SHARD_PROCESS_H_

#include <string>

#include <sys/types.h>

#include "distributed/shard_protocol.h"
#include "util/status.h"

namespace gz {

// Absolute path of the gz_shard binary: $GZ_SHARD_BIN if set, else
// next to the calling executable (all build targets share one bin dir).
std::string DefaultShardBinary();

class ShardProcess {
 public:
  ShardProcess() = default;
  // Kills and reaps an still-running child; orderly shutdown is the
  // cluster's job.
  ~ShardProcess();
  ShardProcess(const ShardProcess&) = delete;
  ShardProcess& operator=(const ShardProcess&) = delete;

  // fork/execs `binary --fd N` with one end of a fresh socketpair as fd
  // N; the child's stderr is redirected (append) to `log_path` so shard
  // logs survive a crash for post-mortem (CI uploads them on failure).
  Status Spawn(const std::string& binary, const std::string& log_path);

  // True while the child has neither exited nor been reaped.
  bool Running();

  // SIGKILL + reap; idempotent. The socket stays open so queued replies
  // can be drained, but any further Call fails with IoError.
  void Kill();

  // Sends one request and awaits its kAck reply (via RecvReply, so a
  // kError reply decodes into the shard's Status and transport
  // failures are IoError). UPDATE_BATCH is fire-and-forget: use Send*
  // directly, no reply.
  Status CallAck(ShardMessageType type, const void* payload,
                 size_t payload_bytes, ShardAck* ack);

  int fd() const { return fd_; }
  pid_t pid() const { return pid_; }
  const std::string& log_path() const { return log_path_; }

 private:
  void CloseSocket();

  pid_t pid_ = -1;
  int fd_ = -1;
  bool reaped_ = false;
  std::string log_path_;
  ShardFrame reply_buf_;  // Reused across Call()s.
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARD_PROCESS_H_
