#include "distributed/shard_endpoint.h"

namespace gz {

std::string ShardEndpoint::ToString() const {
  if (kind == Kind::kLocal) return "local:";
  return "tcp://" + host + ":" + std::to_string(port);
}

Result<ShardEndpoint> ParseShardEndpoint(const std::string& uri) {
  if (uri.empty() || uri == "local:" || uri == "local") {
    return ShardEndpoint::Local();
  }
  const std::string scheme = "tcp://";
  if (uri.rfind(scheme, 0) != 0) {
    return Status::InvalidArgument(
        "shard endpoint '" + uri +
        "': expected 'local:' or 'tcp://host:port'");
  }
  const std::string rest = uri.substr(scheme.size());
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == rest.size()) {
    return Status::InvalidArgument("shard endpoint '" + uri +
                                   "': expected tcp://host:port");
  }
  const std::string host = rest.substr(0, colon);
  const std::string port_str = rest.substr(colon + 1);
  uint64_t port = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("shard endpoint '" + uri +
                                     "': port is not a number");
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) break;
  }
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("shard endpoint '" + uri +
                                   "': port out of range");
  }
  return ShardEndpoint::Tcp(host, static_cast<uint16_t>(port));
}

}  // namespace gz
