#include "distributed/shard_process.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

std::string DefaultShardBinary() {
  const char* env = std::getenv("GZ_SHARD_BIN");
  if (env != nullptr && *env != '\0') return env;
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  GZ_CHECK_MSG(n > 0, "cannot resolve /proc/self/exe");
  self[n] = '\0';
  std::string path(self);
  const size_t slash = path.rfind('/');
  GZ_CHECK(slash != std::string::npos);
  return path.substr(0, slash + 1) + "gz_shard";
}

ShardProcess::~ShardProcess() {
  Kill();
  CloseSocket();
}

void ShardProcess::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ShardProcess::Spawn(const std::string& binary,
                           const std::string& log_path) {
  if (pid_ >= 0 && Running()) {
    return Status::FailedPrecondition("shard process already running");
  }
  CloseSocket();
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  // Coordinator's end must not leak into later-spawned shards: a
  // sibling holding a copy would keep the socket half-open after this
  // shard dies.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
  const std::string fd_arg = std::to_string(sv[1]);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls until execv. Keep sv[1] open
    // for the server; route stderr to the log file so a crash leaves a
    // readable trace.
    ::close(sv[0]);
    if (!log_path.empty()) {
      const int log_fd =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDERR_FILENO);
        if (log_fd != STDERR_FILENO) ::close(log_fd);
      }
    }
    char* const argv[] = {const_cast<char*>(binary.c_str()),
                          const_cast<char*>("--fd"),
                          const_cast<char*>(fd_arg.c_str()), nullptr};
    ::execv(binary.c_str(), argv);
    // exec failed; report on (possibly redirected) stderr and die hard.
    const char msg[] = "gz_shard exec failed\n";
    const ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
    ::_exit(127);
  }
  ::close(sv[1]);
  pid_ = pid;
  fd_ = sv[0];
  reaped_ = false;
  log_path_ = log_path;
  return Status::Ok();
}

bool ShardProcess::Running() {
  if (pid_ < 0 || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    return false;
  }
  return r == 0;
}

void ShardProcess::Kill() {
  if (pid_ < 0 || reaped_) return;
  ::kill(pid_, SIGKILL);
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  reaped_ = true;
}

Status ShardProcess::CallAck(ShardMessageType type, const void* payload,
                             size_t payload_bytes, ShardAck* ack) {
  if (fd_ < 0) return Status::IoError("shard socket not open");
  Status s = SendFrame(fd_, type, payload, payload_bytes);
  if (!s.ok()) return s;
  bool in_sync = false;
  s = RecvReply(fd_, ShardMessageType::kAck, &reply_buf_, &in_sync);
  if (!s.ok()) return s;
  return DecodeShardAck(reply_buf_.payload.data(), reply_buf_.payload.size(),
                        ack);
}

}  // namespace gz
