#include "distributed/shard_process.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

std::string DefaultShardBinary() {
  const char* env = std::getenv("GZ_SHARD_BIN");
  if (env != nullptr && *env != '\0') return env;
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  GZ_CHECK_MSG(n > 0, "cannot resolve /proc/self/exe");
  self[n] = '\0';
  std::string path(self);
  const size_t slash = path.rfind('/');
  GZ_CHECK(slash != std::string::npos);
  return path.substr(0, slash + 1) + "gz_shard";
}

ShardProcess::ShardProcess(std::string binary, std::string log_path,
                           std::string auth_secret)
    : binary_(std::move(binary)),
      log_path_(std::move(log_path)),
      auth_secret_(std::move(auth_secret)) {}

ShardProcess::~ShardProcess() {
  Terminate();
  CloseSocket();
}

void ShardProcess::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ShardProcess::Connect() {
  if (pid_ >= 0 && Alive()) {
    return Status::FailedPrecondition("shard process already running");
  }
  CloseSocket();
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  // Coordinator's end must not leak into later-spawned shards: a
  // sibling holding a copy would keep the socket half-open after this
  // shard dies. The child's end (sv[1]) stays inheritable.
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
  Result<pid_t> pid = SpawnShardChild(
      binary_, {"--fd", std::to_string(sv[1])}, log_path_, auth_secret_,
      /*inherit_fd=*/sv[1]);
  if (!pid.ok()) {
    ::close(sv[0]);
    ::close(sv[1]);
    return pid.status();
  }
  ::close(sv[1]);
  pid_ = pid.value();
  fd_ = sv[0];
  reaped_ = false;
  // The handshake runs even over the trusted socketpair: one frame
  // flow, and a secret mismatch (a stale binary, a polluted child
  // environment) surfaces at spawn, not mid-stream.
  Status s = ClientHandshake(fd_, auth_secret_);
  if (!s.ok()) {
    Terminate();
    return s;
  }
  return Status::Ok();
}

bool ShardProcess::Alive() { return ShardChildRunning(pid_, &reaped_); }

void ShardProcess::Terminate() { KillShardChild(pid_, &reaped_); }

}  // namespace gz
