// QuerySession: a read-side client of the serving tier. Dials every
// shard listener of a cluster as a *reader* session (role-restricted:
// the handshake proves the shared secret and binds the reader role, so
// the session can observe but never mutate — see shard_protocol.h),
// maintains its own epoch/watermark-keyed SnapshotCache, and serves
// merged snapshots WITHOUT ever touching the coordinator: queries
// scale out by adding QuerySessions, not coordinator load.
//
// Consistency protocol (a seqlock over shard positions): one refresh
// reads every shard's STATS_EX position (t0), pre-stages node-range
// pulls for exactly the shards whose watermark moved, re-reads the
// positions (t1), and only installs the pulls if t1 == t0. Positions
// are monotone (update counts, delta sequence numbers and the epoch
// only grow), so t0 == t1 proves every staged byte corresponds to the
// keyed position — no ABA, no torn reads across shards mid-migration.
// A moving cluster just makes the refresh retry; a bounded number of
// failed rounds returns an error rather than spinning forever.
//
// Honest limitation: a QuerySession computes the merged snapshot's
// update count as the sum over the shards it can see, so after a
// RemoveShard the retired shard's ingested count (which the
// coordinator carries forward separately) is missing from
// num_updates() — the sketch CONTENT is still exact. Sessions must
// also re-Connect() after the cluster adds or removes listeners; a
// vanished listener surfaces as an IoError from Snapshot().
#ifndef GZ_DISTRIBUTED_QUERY_SESSION_H_
#define GZ_DISTRIBUTED_QUERY_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/connectivity.h"
#include "core/snapshot_cache.h"
#include "distributed/shard_protocol.h"
#include "distributed/shard_transport.h"
#include "util/status.h"

namespace gz {

struct QuerySessionOptions {
  // tcp:// endpoints of the cluster's shard listeners, one per shard.
  std::vector<std::string> endpoints;
  // Shared handshake secret; must match the listeners'.
  std::string auth_secret;
  // Chunking of refresh pulls (see SnapshotCache).
  uint64_t nodes_per_chunk = 1 << 14;
  // Refresh rounds to attempt while the cluster position keeps moving
  // under the seqlock before giving up.
  int max_position_retries = 16;
};

class QuerySession {
 public:
  explicit QuerySession(QuerySessionOptions options);
  ~QuerySession();
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  // Dials and authenticates a reader session to every endpoint.
  Status Connect();

  // Brings the cache to the cluster's current (epoch, watermarks)
  // position — zero data pulls when nothing moved — and returns the
  // merged snapshot. *out stays valid until the next Snapshot() call.
  // Fails when a shard is unreachable/unconfigured, or when the
  // position kept moving for max_position_retries rounds.
  Status Snapshot(const GraphSnapshot** out);

  // Convenience: Snapshot() + the parallel Boruvka query.
  Result<ConnectivityResult> Connectivity(int threads = 1);

  // Staleness probe: one STATS_EX position sweep, no content pulls.
  // *fresh says whether the cached snapshot (cache().merged()) is still
  // exactly the cluster's position — readers that serve slightly-stale
  // answers poll this cheaply and pay Snapshot()'s refresh only when it
  // reports false. A position caught mid-reshard (epoch skew) is
  // reported as stale, not an error.
  Status PollPositions(bool* fresh);

  // Observability: cache counters, plus how many seqlock rounds the
  // last Snapshot() needed (1 = stable on the first try).
  const SnapshotCache& cache() const { return cache_; }
  int last_refresh_rounds() const { return last_refresh_rounds_; }

 private:
  // One STATS_EX sweep across every connection (pipelined: all
  // requests go out before the first reply is read).
  Status ReadPositions(std::vector<ShardStatsEx>* stats);
  // kMigrateExtract -> kMigrateData pull of [lo, hi) from conns_[i].
  Status PullRange(size_t conn, uint64_t lo, uint64_t hi,
                   std::vector<uint8_t>* delta);

  QuerySessionOptions options_;
  std::vector<std::unique_ptr<TcpShardTransport>> conns_;
  SnapshotCache cache_;
  ShardFrame reply_buf_;
  int last_refresh_rounds_ = 0;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_QUERY_SESSION_H_
