// QuerySession: a read-side client of the serving tier. Dials every
// shard listener of a cluster as a *reader* session (role-restricted:
// the handshake proves the shared secret and binds the reader role, so
// the session can observe but never mutate — see shard_protocol.h),
// maintains its own epoch/watermark-keyed SnapshotCache, and serves
// merged snapshots WITHOUT ever touching the coordinator: queries
// scale out by adding QuerySessions, not coordinator load.
//
// Consistency protocol (a seqlock over shard positions): one refresh
// reads every shard's STATS_EX position (t0), pre-stages node-range
// pulls for exactly the shards whose watermark moved, re-reads the
// positions (t1), and only installs the pulls if t1 == t0. Positions
// are monotone (update counts, delta sequence numbers and the epoch
// only grow), so t0 == t1 proves every staged byte corresponds to the
// keyed position — no ABA, no torn reads across shards mid-migration.
// A moving cluster just makes the refresh retry; a bounded number of
// failed rounds returns an error rather than spinning forever.
//
// Replication: endpoints may include several listeners serving the
// SAME shard id (its replicas). The session groups connections by the
// shard id each reports, verifies the group sizes against the
// cluster's advertised replication factor, and reads positions / pulls
// content from any ONE live group member per shard — so a reader
// survives the death of a listener mid-sweep as long as every shard
// keeps one live replica. Replicas of one shard reporting different
// positions is transient skew (an update fan-out caught mid-flight)
// and is handled like any moving position: retry / stale.
//
// Every request runs under a receive deadline (an OS-level socket
// timeout, see QuerySessionOptions): a listener that accepts,
// authenticates, and then goes silent yields DeadlineExceeded instead
// of hanging the reader forever, and the dead connection is excluded
// from later sweeps.
//
// Honest limitation: a QuerySession computes the merged snapshot's
// update count as the sum over the shards it can see, so after a
// RemoveShard the retired shard's ingested count (which the
// coordinator carries forward separately) is missing from
// num_updates() — the sketch CONTENT is still exact. Sessions must
// also re-Connect() after the cluster adds or removes listeners; a
// vanished listener whose shard has no other live replica surfaces as
// an error from Snapshot().
#ifndef GZ_DISTRIBUTED_QUERY_SESSION_H_
#define GZ_DISTRIBUTED_QUERY_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/connectivity.h"
#include "core/snapshot_cache.h"
#include "core/standing_query.h"
#include "distributed/shard_protocol.h"
#include "distributed/shard_transport.h"
#include "util/status.h"
#include "workloads/count_min.h"

namespace gz {

struct QuerySessionOptions {
  // tcp:// endpoints of the cluster's shard listeners — one per shard,
  // or one per replica when the cluster replicates.
  std::vector<std::string> endpoints;
  // Shared handshake secret; must match the listeners'.
  std::string auth_secret;
  // Chunking of refresh pulls (see SnapshotCache).
  uint64_t nodes_per_chunk = 1 << 14;
  // Refresh rounds to attempt while the cluster position keeps moving
  // under the seqlock before giving up.
  int max_position_retries = 16;
  // Per-request receive deadline. A listener that stops answering
  // mid-request fails with DeadlineExceeded after this long instead of
  // blocking the reader forever. 0 = wait forever.
  int receive_deadline_seconds = 30;
};

// How a watch (StartWatch) paces itself.
struct StandingWatchOptions {
  // The fallback cadence: how long the watcher sleeps between position
  // probes when no push notification arrives. With live notify streams
  // this is only a safety net; with subscribe = false (or after every
  // notify stream has died) it is the whole pacing.
  int poll_interval_ms = 200;
  // Open a dedicated kSubscribe notify stream to every endpoint so the
  // shard PUSHES position changes and the watcher reacts immediately
  // instead of discovering them a poll interval late. A stream that is
  // refused (shard not yet configured) or dies later is simply dropped
  // — the cadence poll still covers its shard.
  bool subscribe = true;
  // Threads for the Boruvka fold each evaluation runs.
  int threads = 1;
};

class QuerySession {
 public:
  explicit QuerySession(QuerySessionOptions options);
  ~QuerySession();
  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  // Dials and authenticates a reader session to every endpoint.
  Status Connect();

  // Brings the cache to the cluster's current (epoch, watermarks)
  // position — zero data pulls when nothing moved — and returns the
  // merged snapshot. *out stays valid until the next Snapshot() call.
  // Fails when a shard is unreachable/unconfigured, or when the
  // position kept moving for max_position_retries rounds.
  Status Snapshot(const GraphSnapshot** out);

  // Convenience: Snapshot() + the parallel Boruvka query.
  Result<ConnectivityResult> Connectivity(int threads = 1);

  // Heavy-hitter fold over the reader sessions: one kHeavyHitters pull
  // from any live replica per shard, sum-merged (replicas of a shard
  // hold identical counters, so any one is the shard). Same caveat as
  // num_updates(): counters a RemoveShard retired live only at the
  // coordinator, so a reader's fold misses them; the per-shard reads
  // are not position-locked either, so a fold taken mid-ingest is a
  // consistent-per-shard point-in-time, not a global barrier. Fails
  // with the shards' FailedPrecondition when tracking is disabled.
  Result<HeavyHitterSketch> HeavyHitters();

  // Staleness probe: one STATS_EX position sweep, no content pulls.
  // *fresh says whether the cached snapshot (cache().merged()) is still
  // exactly the cluster's position — readers that serve slightly-stale
  // answers poll this cheaply and pay Snapshot()'s refresh only when it
  // reports false. A position caught mid-reshard (epoch skew) or with
  // replica position skew is reported as stale, not an error; a
  // MISCONFIGURATION — more endpoints serving one shard id than the
  // cluster replicates — is FailedPrecondition, exactly as Snapshot()
  // reports it (a config error must never masquerade as staleness).
  Status PollPositions(bool* fresh);

  // Observability: cache counters, plus how many seqlock rounds the
  // last Snapshot() needed (1 = stable on the first try).
  const SnapshotCache& cache() const { return cache_; }
  int last_refresh_rounds() const { return last_refresh_rounds_; }

  // ---- Standing queries -------------------------------------------
  //
  // Register queries, then StartWatch() to spawn the watcher thread:
  // it waits on the notify streams (or the fallback cadence), probes
  // the cluster position, and re-runs Snapshot() + one evaluation only
  // when the position moved (or a freshly added query needs its
  // initial answer), firing `notifier` once per changed answer — see
  // core/standing_query.h for the delivery contract. The notifier runs
  // on the watcher thread; keep it quick or hand off.
  //
  // While a watch runs, the watcher thread owns the request/reply
  // connections: the owner must not call Snapshot(), Connectivity(),
  // PollPositions(), or Connect() until StopWatch() returns. Add and
  // Remove are safe at any time.
  uint64_t AddStandingQuery(const StandingQuerySpec& spec);
  bool RemoveStandingQuery(uint64_t query_id);

  // Spawns the watcher. Fails if already watching or never connected.
  // Notify-stream subscription failures are NOT fatal (the cadence
  // poll covers them); watch_notify_streams() says how many are live.
  Status StartWatch(const StandingWatchOptions& options,
                    StandingQueryNotifier notifier);
  // Stops and joins the watcher, closes the notify streams. Idempotent.
  void StopWatch();
  bool watching() const { return watching_.load(); }

  // Watch observability (safe while watching).
  uint64_t watch_notifications() const;
  uint64_t watch_evaluations() const;
  size_t watch_notify_streams() const;
  // The most recent evaluation-cycle failure (a mid-reshard refresh
  // that kept moving, a dead shard). Cleared by the next clean cycle;
  // the watch itself keeps running through transient errors.
  Status watch_error() const;

 private:
  // One position sweep, grouped: every live connection's STATS_EX reply
  // validated into a single cluster view.
  struct PositionView {
    uint64_t epoch = 0;
    // Epoch skew across shards, or replicas of one shard reporting
    // different positions — a moving cluster, not an error.
    bool skew = false;
    ShardWatermarks marks;  // One entry per shard (not per conn).
    uint64_t total_updates = 0;
    // shard id -> live conn indices serving it (replicas). Built once
    // per sweep; both position checks and pull failover walk it — no
    // per-shard scan over the conn list.
    std::map<int, std::vector<size_t>> groups;
    NodeSketchParams params;
  };

  // One STATS_EX sweep across every live connection (pipelined: all
  // requests go out before the first reply is read). A connection that
  // fails to answer is marked dead and excluded — the sweep itself only
  // fails when no live connection remains.
  Status ReadPositions(std::vector<ShardStatsEx>* stats);
  // Validates one sweep into a PositionView: geometry and replication
  // agreement, group sizes against the replication factor, and
  // coverage — a dead connection whose shard id has no live replica
  // (or was never learned) surfaces the saved transport error.
  Status BuildView(const std::vector<ShardStatsEx>& stats,
                   PositionView* view);
  // kMigrateExtract -> kMigrateData pull of [lo, hi) from conns_[i];
  // marks the connection dead on transport failure.
  Status PullRange(size_t conn, uint64_t lo, uint64_t hi,
                   std::vector<uint8_t>* delta);

  // Dials every endpoint as an extra reader session and converts each
  // into a kSubscribe notify stream. Failures drop the stream, never
  // the watch.
  void OpenNotifyStreams();
  // The watcher thread body.
  void WatchLoop();
  // One watch cycle: position probe, refresh if moved, evaluate.
  void WatchEvaluate();

  QuerySessionOptions options_;
  std::vector<std::unique_ptr<TcpShardTransport>> conns_;
  // Connections that have failed are marked dead rather than torn down:
  // index stability keeps the seqlock's t0/t1 comparison simple, and a
  // dead conn's sticky shard id (below) still drives coverage checks.
  std::vector<bool> conn_alive_;
  // Last shard id each connection reported (-1 before the first reply).
  // Sticky across its death, so the session knows whether a dead conn's
  // shard is still covered by a live replica.
  std::vector<int> conn_shard_ids_;
  // Most recent transport error from a connection marked dead.
  Status conn_error_;
  SnapshotCache cache_;
  ShardFrame reply_buf_;
  int last_refresh_rounds_ = 0;

  // ---- Watch state ------------------------------------------------
  // watch_mu_ guards the registry, watch_error_, and the notify-stream
  // list; the watcher thread holds it across a whole evaluation cycle,
  // so Add/Remove may briefly block behind a refresh.
  mutable std::mutex watch_mu_;
  StandingQueryRegistry registry_;
  Status watch_error_;
  StandingWatchOptions watch_options_;
  StandingQueryNotifier watch_notifier_;
  std::vector<std::unique_ptr<TcpShardTransport>> notify_conns_;
  std::thread watch_thread_;
  int watch_stop_pipe_[2] = {-1, -1};  // Wakes the watcher for StopWatch.
  std::atomic<bool> watching_{false};
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_QUERY_SESSION_H_
