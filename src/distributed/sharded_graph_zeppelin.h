// Sharded ingestion: the distributed extension the paper sketches in
// its conclusion ("sketches can be updated independently ... they can
// be partitioned throughout a distributed cluster without sacrificing
// stream ingestion rate").
//
// Each shard is a complete GraphZeppelin instance sharing the same
// sketch seed; stream updates are routed to shards by hashing the edge,
// so no coordination is needed during ingestion. Because sketches are
// linear, the true node sketch is the XOR of the per-shard node
// sketches, and a query merges shard snapshots node-wise before running
// Boruvka — exactly the aggregation a distributed deployment does at a
// coordinator.
//
// Two execution modes behind one API:
//   kInProcess — every shard is an in-process instance (the original
//     mode): zero transport cost, useful as the ground truth.
//   kProcess — every shard is a real OS process (gz_shard) fed over a
//     socket by a ShardCluster; queries aggregate serialized
//     GraphSnapshot bytes. The routing hash and merge algebra are
//     shared, so both modes produce bitwise-identical snapshots.
#ifndef GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
#define GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_

#include <memory>
#include <vector>

#include "core/graph_zeppelin.h"
#include "distributed/shard_cluster.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class ShardedGraphZeppelin {
 public:
  enum class Mode {
    kInProcess,  // Shards are in-process GraphZeppelin instances.
    kProcess,    // Shards are gz_shard worker processes.
  };

  // `base` configures every shard (same num_nodes and sketch seed;
  // backing files get per-shard tags automatically).
  ShardedGraphZeppelin(const GraphZeppelinConfig& base, int num_shards,
                       Mode mode = Mode::kInProcess);

  Status Init();

  // Routes the update to its shard (deterministic by edge). In process
  // mode single updates batch at this API boundary — one socket frame
  // per span, not per update — and drain before any barrier.
  void Update(const GraphUpdate& update);

  // Bulk ingestion: partitions the span by shard, then hands each shard
  // its updates through the flat batch pipeline (in-process) or as one
  // UPDATE_BATCH frame per shard (process mode). This is what a stream
  // partitioner in front of real machines would do per network buffer.
  void Update(const GraphUpdate* updates, size_t count);

  // Shard an update would go to; exposed for tests and for external
  // routers (e.g. a stream partitioner in front of real machines).
  // Identical across modes.
  int ShardFor(const Edge& e) const;

  // Flushes every shard's buffers and waits for their workers.
  void Flush();

  // Coordinator aggregation: captures shard 0's snapshot, then folds
  // every other shard in node-by-node — in-process via
  // GraphZeppelin::MergeSnapshotInto, in process mode via serialized
  // snapshot frames and GraphSnapshot::MergeSerialized. Linearity makes
  // the result exactly the whole graph's snapshot either way.
  GraphSnapshot Snapshot();

  // Aggregates the shard snapshots and runs Boruvka.
  ConnectivityResult ListSpanningForest();

  Mode mode() const { return mode_; }
  int num_shards() const { return num_shards_; }
  // Stream position of one shard (an RPC in process mode; drains the
  // pending single-update span first, hence non-const).
  uint64_t updates_in_shard(int shard);
  size_t RamByteSize();

  // The process-mode cluster, for lifecycle operations the thin facade
  // does not wrap (checkpoints, fault injection, restart). Null in
  // in-process mode.
  ShardCluster* cluster() { return cluster_.get(); }

 private:
  void DrainPending();

  GraphZeppelinConfig base_;
  Mode mode_;
  int num_shards_;
  // In-process mode state.
  std::vector<std::unique_ptr<GraphZeppelin>> shards_;
  // Per-shard routing buffers for the bulk path (capacity persists
  // across calls, so steady-state routing does not allocate).
  std::vector<std::vector<GraphUpdate>> route_bufs_;
  // Process mode state.
  std::unique_ptr<ShardCluster> cluster_;
  // Single updates batched at the API boundary before a bulk hand-off
  // to the cluster (process mode only; in-process shards have their own
  // span buffering).
  std::vector<GraphUpdate> pending_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
