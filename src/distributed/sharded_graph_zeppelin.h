// Sharded ingestion: the distributed extension the paper sketches in
// its conclusion ("sketches can be updated independently ... they can
// be partitioned throughout a distributed cluster without sacrificing
// stream ingestion rate").
//
// Each shard is a complete GraphZeppelin instance sharing the same
// sketch seed; stream updates are routed to shards by hashing the edge,
// so no coordination is needed during ingestion. Because sketches are
// linear, the true node sketch is the XOR of the per-shard node
// sketches, and a query merges shard snapshots node-wise before running
// Boruvka — exactly the aggregation a distributed deployment would do
// at a coordinator.
#ifndef GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
#define GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_

#include <memory>
#include <vector>

#include "core/graph_zeppelin.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class ShardedGraphZeppelin {
 public:
  // `base` configures every shard (same num_nodes and sketch seed;
  // backing files get per-shard tags automatically).
  ShardedGraphZeppelin(const GraphZeppelinConfig& base, int num_shards);

  Status Init();

  // Routes the update to its shard (deterministic by edge).
  void Update(const GraphUpdate& update);

  // Bulk ingestion: partitions the span by shard, then hands each shard
  // its updates through the flat batch pipeline. This is what a stream
  // partitioner in front of real machines would do per network buffer.
  void Update(const GraphUpdate* updates, size_t count);

  // Shard an update would go to; exposed for tests and for external
  // routers (e.g. a stream partitioner in front of real machines).
  int ShardFor(const Edge& e) const;

  // Flushes every shard's buffers and waits for their workers.
  void Flush();

  // Coordinator aggregation: captures shard 0's snapshot, then folds
  // every other shard in node-by-node (GraphZeppelin::MergeSnapshotInto)
  // — peak memory is one snapshot plus one scratch sketch, never a
  // second per-shard snapshot. Linearity makes the result exactly the
  // whole graph's snapshot; the extended algorithms consume it
  // directly, and its serialized bytes are what a multi-process
  // deployment would ship to the coordinator.
  GraphSnapshot Snapshot();

  // Aggregates the shard snapshots and runs Boruvka.
  ConnectivityResult ListSpanningForest();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint64_t updates_in_shard(int shard) const {
    return shards_[shard]->num_updates_ingested();
  }
  size_t RamByteSize() const;

 private:
  GraphZeppelinConfig base_;
  std::vector<std::unique_ptr<GraphZeppelin>> shards_;
  // Per-shard routing buffers for the bulk path (capacity persists
  // across calls, so steady-state routing does not allocate).
  std::vector<std::vector<GraphUpdate>> route_bufs_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
