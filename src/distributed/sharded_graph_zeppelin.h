// Sharded ingestion: the distributed extension the paper sketches in
// its conclusion ("sketches can be updated independently ... they can
// be partitioned throughout a distributed cluster without sacrificing
// stream ingestion rate").
//
// Each shard is a complete GraphZeppelin instance sharing the same
// sketch seed; stream updates are routed to shards through a versioned
// slot table (see RoutingTable), so no coordination is needed during
// ingestion. Because sketches are linear, the true node sketch is the
// XOR of the per-shard node sketches, and a query merges shard
// snapshots node-wise before running Boruvka — exactly the aggregation
// a distributed deployment does at a coordinator.
//
// Linearity also buys elasticity: shards can be added, removed or
// split WITHOUT pausing the stream. A reshard bumps the routing epoch
// and (for remove/split) moves sketch state in node-range chunks, each
// chunk an XOR install on the target plus an XOR cancel on the source;
// PumpMigration() advances one chunk at a time, so Update() interleaves
// freely. See ShardCluster for the full model.
//
// Two execution modes behind one API:
//   kInProcess — every shard is an in-process instance (the original
//     mode): zero transport cost, useful as the ground truth.
//   kProcess — every shard is a real OS process (gz_shard) fed over a
//     socket by a ShardCluster; queries aggregate serialized
//     GraphSnapshot bytes. The routing table, migration steps and merge
//     algebra are shared, so both modes produce bitwise-identical
//     snapshots through every reshard schedule.
#ifndef GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
#define GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/graph_zeppelin.h"
#include "distributed/shard_cluster.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class ShardedGraphZeppelin {
 public:
  enum class Mode {
    kInProcess,  // Shards are in-process GraphZeppelin instances.
    kProcess,    // Shards are gz_shard worker processes.
  };

  // `base` configures every shard (same num_nodes and sketch seed;
  // backing files get per-shard tags automatically). `cluster_options`
  // configures the process-mode cluster; in-process mode honors its
  // migrate_nodes_per_chunk so the two modes step migrations
  // identically.
  ShardedGraphZeppelin(const GraphZeppelinConfig& base, int num_shards,
                       Mode mode = Mode::kInProcess,
                       ShardClusterOptions cluster_options = {});

  Status Init();

  // Routes the update to its shard (deterministic by edge + table). In
  // process mode single updates batch at this API boundary — one socket
  // frame per span, not per update — and drain before any barrier.
  void Update(const GraphUpdate& update);

  // Bulk ingestion: partitions the span by shard, then hands each shard
  // its updates through the flat batch pipeline (in-process) or as one
  // UPDATE_BATCH frame per shard (process mode). This is what a stream
  // partitioner in front of real machines would do per network buffer.
  void Update(const GraphUpdate* updates, size_t count);

  // Shard an update would go to; exposed for tests and for external
  // routers (e.g. a stream partitioner in front of real machines).
  // Identical across modes: a pure function of (edge, routing_table()).
  int ShardFor(const Edge& e) const;
  const RoutingTable& routing_table() const;

  // Flushes every shard's buffers and waits for their workers.
  void Flush();

  // Coordinator aggregation: captures one shard's snapshot, then folds
  // every other active shard in node-by-node — in-process via
  // GraphZeppelin::MergeSnapshotInto, in process mode via serialized
  // snapshot frames and GraphSnapshot::MergeSerialized. Linearity makes
  // the result exactly the whole graph's snapshot either way, through
  // any history of reshards.
  GraphSnapshot Snapshot();

  // Aggregates the shard snapshots and runs Boruvka.
  ConnectivityResult ListSpanningForest();

  // Heavy-hitter fold: sum-merges the per-shard count-min side
  // sketches (plus counters captured from removed shards) into exactly
  // the sketch a single-process instance would hold over the same
  // stream — canonical serialization even makes the bytes identical.
  // Same contract in both modes; FailedPrecondition when the base
  // config has heavy_hitter_width == 0.
  Result<HeavyHitterSketch> HeavyHitters();

  // Serving-tier counterpart of Snapshot(): answered from the
  // epoch/watermark-keyed SnapshotCache — O(1) while nothing moved,
  // node-delta pulls from only the moved shards otherwise. Bitwise
  // identical to Snapshot() at the same position, in both modes. *out
  // stays valid until the next CachedSnapshot() or mutation.
  Status CachedSnapshot(const GraphSnapshot** out);

  // Standing queries, same contract in both modes: register specs,
  // then call EvaluateStandingQueries() between updates — one
  // CachedSnapshot() refresh + one fold serves every registered query,
  // firing `notifier` once per changed answer (core/standing_query.h).
  // In-process mode drives its own registry; process mode delegates to
  // the cluster's.
  StandingQueryRegistry& standing_queries();
  Result<size_t> EvaluateStandingQueries(
      int threads, const StandingQueryNotifier& notifier);

  // --- Elastic resharding --------------------------------------------------
  // Same contract in both modes (see ShardCluster). Add returns the new
  // shard's id; BeginSplitShard's new shard id is the returned value.
  // Between Begin* and the last PumpMigration() the stream keeps
  // flowing — Update() never blocks on a migration.
  //
  // `endpoint` places the new shard ("" = local:, "tcp://host:port" =
  // attach a running gz_shard --listen): elastic growth onto another
  // machine is one call. Process mode only — in-process shards have
  // nowhere remote to live, so a non-local endpoint there is a
  // FailedPrecondition.
  Result<int> AddShard(const std::string& endpoint = std::string());
  Status BeginRemoveShard(int shard);
  Result<int> BeginSplitShard(int shard,
                              const std::string& endpoint = std::string());
  Status PumpMigration();
  bool migration_active() const;
  int migration_target() const;
  // Synchronous conveniences: Begin* + pump to completion.
  Status RemoveShard(int shard);
  Result<int> SplitShard(int shard,
                         const std::string& endpoint = std::string());

  Mode mode() const { return mode_; }
  // Size of the shard-id space (ids are never reused).
  int num_shards() const;
  // Ids of shards that currently exist, ascending.
  std::vector<int> ActiveShards() const;
  // Stream position of one shard (an RPC in process mode; drains the
  // pending single-update span first, hence non-const).
  uint64_t updates_in_shard(int shard);
  size_t RamByteSize();

  // The process-mode cluster, for lifecycle operations the thin facade
  // does not wrap (checkpoints, fault injection, restart). Null in
  // in-process mode.
  ShardCluster* cluster() { return cluster_.get(); }

  // The serving cache behind CachedSnapshot() (the cluster's in process
  // mode), exposed for counter observability: range_pulls() not growing
  // across a call proves it was answered from cache.
  const SnapshotCache& snapshot_cache() const {
    return cluster_ != nullptr ? cluster_->snapshot_cache() : cache_;
  }

 private:
  struct InProcessMigration {
    bool remove = false;  // Else: split.
    int source = -1;
    int target = -1;
    uint64_t next_node = 0;
    uint64_t end_node = 0;
  };

  void DrainPending();
  int AllocateInProcessShard();

  GraphZeppelinConfig base_;
  Mode mode_;
  ShardClusterOptions cluster_options_;
  bool initialized_ = false;
  // In-process mode state. Index = shard id; nullptr = removed.
  RoutingTable table_;
  std::vector<std::unique_ptr<GraphZeppelin>> shards_;
  // Per-shard routing buffers for the bulk path (capacity persists
  // across calls, so steady-state routing does not allocate).
  std::vector<std::vector<GraphUpdate>> route_bufs_;
  // Per-shard migration-delta counts (mirrors the cluster's
  // delta_seq_sent_): the second watermark component, bumped once per
  // MergeSerializedNodeRange fold a pump step applies.
  std::vector<uint64_t> delta_seq_;
  // Stream positions of removed shards (mirrors the cluster's).
  uint64_t migrated_updates_ = 0;
  // Heavy-hitter counters of removed in-process shards, captured
  // before the instance is destroyed (mirrors the cluster's).
  HeavyHitterSketch retired_hh_;
  // The in-process serving cache behind CachedSnapshot(); process mode
  // uses the cluster's. Same split for the standing-query registry.
  SnapshotCache cache_;
  StandingQueryRegistry standing_queries_;
  std::optional<InProcessMigration> migration_;
  // Process mode state.
  std::unique_ptr<ShardCluster> cluster_;
  // Single updates batched at the API boundary before a bulk hand-off
  // to the cluster (process mode only; in-process shards have their own
  // span buffering).
  std::vector<GraphUpdate> pending_;
};

}  // namespace gz

#endif  // GZ_DISTRIBUTED_SHARDED_GRAPH_ZEPPELIN_H_
