#include "distributed/shard_protocol.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <random>

#include "util/check.h"
#include "util/crc32c.h"
#include "util/sha256.h"
#include "util/xxhash.h"

namespace gz {
namespace {

void EncodeHeader(ShardMessageType type, uint64_t payload_bytes,
                  uint8_t out[ShardFrameHeader::kBytes]) {
  const uint32_t magic = ShardFrameHeader::kMagic;
  const uint16_t version = ShardFrameHeader::kVersion;
  const uint16_t type16 = static_cast<uint16_t>(type);
  std::memcpy(out, &magic, 4);
  std::memcpy(out + 4, &version, 2);
  std::memcpy(out + 6, &type16, 2);
  std::memcpy(out + 8, &payload_bytes, 8);
}

Status DecodeHeader(const uint8_t in[ShardFrameHeader::kBytes],
                    ShardFrameHeader* header) {
  uint32_t magic = 0;
  uint16_t version = 0, type16 = 0;
  uint64_t payload_bytes = 0;
  std::memcpy(&magic, in, 4);
  std::memcpy(&version, in + 4, 2);
  std::memcpy(&type16, in + 6, 2);
  std::memcpy(&payload_bytes, in + 8, 8);
  if (magic != ShardFrameHeader::kMagic) {
    return Status::InvalidArgument("shard frame: bad magic");
  }
  if (version != ShardFrameHeader::kVersion) {
    return Status::InvalidArgument(
        "shard frame: protocol version mismatch (got " +
        std::to_string(version) + ", speak " +
        std::to_string(ShardFrameHeader::kVersion) + ")");
  }
  if (type16 < static_cast<uint16_t>(ShardMessageType::kConfig) ||
      type16 > static_cast<uint16_t>(ShardMessageType::kHeavyHitterBytes)) {
    return Status::InvalidArgument("shard frame: unknown message type " +
                                   std::to_string(type16));
  }
  if (payload_bytes > ShardFrameHeader::kMaxPayloadBytes) {
    return Status::InvalidArgument("shard frame: payload length " +
                                   std::to_string(payload_bytes) +
                                   " exceeds protocol cap");
  }
  header->type = static_cast<ShardMessageType>(type16);
  header->payload_bytes = payload_bytes;
  return Status::Ok();
}

// Byte-cursor codecs for the variable-length payloads. Readers never
// run past `size`: every Get checks the remaining length, so truncated
// payloads decode to an error, not a crash.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }
  void F64(double v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void Raw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I32(int32_t* v) { return Raw(v, 4); }
  bool F64(double* v) { return Raw(v, 8); }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool Done() const { return pos_ == size_; }

 private:
  bool Raw(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status WriteFull(int fd, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    // send() instead of write() for MSG_NOSIGNAL: a SIGKILLed shard
    // must surface as an IoError the coordinator can recover from, not
    // a SIGPIPE that kills the coordinator.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard socket write: ") +
                             std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

void TuneShardSocket(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
  const int idle = 60, interval = 10, count = 6;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof(interval));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count));
}

Status ReadFull(int fd, void* data, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO expiry (reader-session deadlines, pre-auth
      // handshake): its own code, so callers can distinguish "peer is
      // stalled" from "stream is broken".
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded(
            "shard socket read: receive deadline expired");
      }
      return Status::IoError(std::string("shard socket read: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("shard socket closed mid-frame");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

void FrameCrc::Fold(const void* data, size_t size) {
  crc_ = Crc32cExtend(crc_, data, size);
}

Status SendFrameHeader(int fd, ShardMessageType type, uint64_t payload_bytes,
                       FrameCrc* crc) {
  if (payload_bytes > ShardFrameHeader::kMaxPayloadBytes) {
    return Status::InvalidArgument("shard frame: payload exceeds cap");
  }
  uint8_t header[ShardFrameHeader::kBytes];
  EncodeHeader(type, payload_bytes, header);
  crc->Fold(header, sizeof(header));
  return WriteFull(fd, header, sizeof(header));
}

Status SendFrameTrailer(int fd, const FrameCrc& crc) {
  const uint32_t value = crc.value();
  return WriteFull(fd, &value, ShardFrameHeader::kCrcBytes);
}

Status SendFrame(int fd, ShardMessageType type, const void* payload,
                 size_t payload_bytes) {
  return SendFrame2(fd, type, payload, payload_bytes, nullptr, 0);
}

Status SendFrame2(int fd, ShardMessageType type, const void* a,
                  size_t a_bytes, const void* b, size_t b_bytes) {
  const uint64_t payload_bytes = a_bytes + b_bytes;
  if (payload_bytes > ShardFrameHeader::kMaxPayloadBytes) {
    return Status::InvalidArgument("shard frame: payload exceeds cap");
  }
  uint8_t header[ShardFrameHeader::kBytes];
  EncodeHeader(type, payload_bytes, header);
  FrameCrc crc;
  crc.Fold(header, sizeof(header));
  crc.Fold(a, a_bytes);
  crc.Fold(b, b_bytes);
  const uint32_t trailer = crc.value();
  // One sendmsg for header + payload spans + trailer: the routing
  // buffer crosses into the kernel straight from where the router
  // filled it.
  struct iovec iov[4];
  int iovcnt = 0;
  iov[iovcnt].iov_base = header;
  iov[iovcnt].iov_len = sizeof(header);
  ++iovcnt;
  if (a_bytes > 0) {
    iov[iovcnt].iov_base = const_cast<void*>(a);
    iov[iovcnt].iov_len = a_bytes;
    ++iovcnt;
  }
  if (b_bytes > 0) {
    iov[iovcnt].iov_base = const_cast<void*>(b);
    iov[iovcnt].iov_len = b_bytes;
    ++iovcnt;
  }
  iov[iovcnt].iov_base = const_cast<uint32_t*>(&trailer);
  iov[iovcnt].iov_len = ShardFrameHeader::kCrcBytes;
  ++iovcnt;
  struct msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_iov = iov;
  msg.msg_iovlen = iovcnt;
  size_t sent = 0;
  const size_t total =
      sizeof(header) + payload_bytes + ShardFrameHeader::kCrcBytes;
  while (sent < total) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("shard socket write: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
    if (sent == total) break;
    // Short write: advance the iovec cursor past the sent bytes.
    size_t advance = static_cast<size_t>(n);
    while (advance >= msg.msg_iov[0].iov_len) {
      advance -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    msg.msg_iov[0].iov_base =
        static_cast<uint8_t*>(msg.msg_iov[0].iov_base) + advance;
    msg.msg_iov[0].iov_len -= advance;
  }
  return Status::Ok();
}

// The real receive path, with an explicit allocation cap: the public
// RecvFrame accepts up to the protocol cap, while the pre-auth
// handshake path and reader sessions cap at a few KB — a peer not
// entitled to big requests must not be able to command a multi-GB
// allocation with a length field.
Status RecvFrameCapped(int fd, ShardFrame* frame, uint64_t max_payload) {
  uint8_t header_buf[ShardFrameHeader::kBytes];
  Status s = ReadFull(fd, header_buf, sizeof(header_buf));
  if (!s.ok()) return s;
  ShardFrameHeader header;
  s = DecodeHeader(header_buf, &header);
  if (!s.ok()) return s;
  if (header.payload_bytes > max_payload) {
    return Status::InvalidArgument(
        "shard frame: payload length " +
        std::to_string(header.payload_bytes) +
        " exceeds this context's cap of " + std::to_string(max_payload));
  }
  frame->type = header.type;
  // The protocol cap is sized for legitimate big snapshots, so a
  // corrupt-but-in-range length can still exceed this host's memory;
  // the allocation failure must come back as a Status like every other
  // malformed-frame outcome, not escape as bad_alloc and terminate.
  try {
    frame->payload.resize(header.payload_bytes);  // Capacity is reused.
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted,
                  "shard frame: cannot allocate " +
                      std::to_string(header.payload_bytes) +
                      "-byte payload");
  }
  if (header.payload_bytes > 0) {
    s = ReadFull(fd, frame->payload.data(), header.payload_bytes);
    if (!s.ok()) return s;
  }
  // Verify the trailer BEFORE anything decodes the payload: a flipped
  // bit anywhere in header or payload must surface here as a Status,
  // never as a mis-ingested update or a decoder fed garbage. (A
  // corrupted length field lands here too — the bytes read under the
  // wrong length cannot carry a matching checksum.)
  uint32_t trailer = 0;
  s = ReadFull(fd, &trailer, ShardFrameHeader::kCrcBytes);
  if (!s.ok()) return s;
  uint32_t crc = Crc32c(header_buf, sizeof(header_buf));
  crc = Crc32cExtend(crc, frame->payload.data(), frame->payload.size());
  if (crc != trailer) {
    return Status::InvalidArgument("shard frame: checksum mismatch");
  }
  return Status::Ok();
}

Status RecvFrame(int fd, ShardFrame* frame) {
  return RecvFrameCapped(fd, frame, ShardFrameHeader::kMaxPayloadBytes);
}

Status RecvReply(int fd, ShardMessageType expected, ShardFrame* frame,
                 bool* in_sync) {
  Status s = RecvFrame(fd, frame);
  if (!s.ok()) {
    *in_sync = false;
    return s;
  }
  if (frame->type == ShardMessageType::kError) {
    bool decode_ok = false;
    Status err = DecodeShardError(frame->payload.data(),
                                  frame->payload.size(), &decode_ok);
    *in_sync = decode_ok;
    return err;
  }
  if (frame->type != expected) {
    *in_sync = false;
    return Status::Internal("shard replied with unexpected frame type");
  }
  *in_sync = true;
  return Status::Ok();
}

// ---- Authenticated handshake ----------------------------------------------

namespace {

constexpr size_t kProofBytes = kSha256Bytes;

// Handshake frames are tiny and fixed-size (16/48/32 bytes, plus a
// small kError with a message); nothing pre-auth may command a bigger
// allocation than this.
constexpr uint64_t kHandshakeMaxFrameBytes = 4096;

}  // namespace

// Public so the shard server can arm per-read deadlines on reader
// sessions. The handshake's own use is the best-effort pre-auth
// deadline: an unauthenticated peer that connects and goes silent must
// not wedge a server (a session thread stalled pre-auth, or — for the
// single-session server — the whole accept loop, with a legitimate
// coordinator hanging in the listen backlog). 0 clears the deadline —
// an established writer session returns to blocking I/O, where long
// silences are legitimate (a coordinator simply has nothing to send).
void SetShardSocketTimeout(int fd, int seconds) {
  struct timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

namespace {

constexpr int kHandshakeTimeoutSeconds = 10;
// The client side waits out the server-side deadline plus a dead
// session's drain with margin: a coordinator queued in a wedged
// listener's backlog must eventually get an error, never hang
// Start()/RestartShard forever.
constexpr int kClientHandshakeTimeoutSeconds = 30;

// RecvReply's classification with the pre-auth allocation cap.
Status RecvHandshakeReply(int fd, ShardMessageType expected,
                          ShardFrame* frame) {
  Status s = RecvFrameCapped(fd, frame, kHandshakeMaxFrameBytes);
  if (!s.ok()) return s;
  if (frame->type == ShardMessageType::kError) {
    bool decode_ok = false;
    return DecodeShardError(frame->payload.data(), frame->payload.size(),
                            &decode_ok);
  }
  if (frame->type != expected) {
    return Status::Internal("peer sent an unexpected frame mid-handshake");
  }
  return Status::Ok();
}

// Fresh per-connection nonce. std::random_device is the entropy
// backbone; pid and a clock reading are mixed in so even a degenerate
// random_device cannot hand two processes the same nonce.
void FillNonce(uint8_t out[kHandshakeNonceBytes]) {
  std::random_device rd;
  uint64_t words[2];
  words[0] = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  words[1] = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  const uint64_t mix = XxHash64Word(
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()),
      static_cast<uint64_t>(::getpid()));
  words[0] ^= mix;
  words[1] ^= XxHash64Word(mix, 0x68656c6c6fULL);
  std::memcpy(out, words, kHandshakeNonceBytes);
}

// proof = HMAC(secret, domain || client_nonce || server_nonce). The
// domain string separates the two directions, so a server proof can
// never be replayed back as a client proof.
void ComputeProof(const std::string& secret, const char* domain,
                  const uint8_t client_nonce[kHandshakeNonceBytes],
                  const uint8_t server_nonce[kHandshakeNonceBytes],
                  uint8_t out[kProofBytes]) {
  uint8_t message[16 + 2 * kHandshakeNonceBytes] = {0};
  std::memcpy(message, domain, std::min<size_t>(std::strlen(domain), 16));
  std::memcpy(message + 16, client_nonce, kHandshakeNonceBytes);
  std::memcpy(message + 16 + kHandshakeNonceBytes, server_nonce,
              kHandshakeNonceBytes);
  HmacSha256(secret.data(), secret.size(), message, sizeof(message), out);
}

Status AuthFailed() {
  return Status::FailedPrecondition(
      "authentication failed: peer does not hold the shared secret");
}

// Role-specific HMAC domains: the role byte travels in cleartext, but
// the proofs on both sides commit to it, so a tampered role fails
// authentication instead of granting a different privilege level. The
// writer domains are the exact v3 strings — a bare 16-byte HELLO from
// an existing coordinator authenticates unchanged.
const char* ServerDomain(ShardSessionRole role) {
  return role == ShardSessionRole::kReader ? "gzsp3-server-r" : "gzsp3-server";
}
const char* ClientDomain(ShardSessionRole role) {
  return role == ShardSessionRole::kReader ? "gzsp3-client-r" : "gzsp3-client";
}

}  // namespace

Status ClientHandshake(int fd, const std::string& secret,
                       ShardSessionRole role) {
  SetShardSocketTimeout(fd, kClientHandshakeTimeoutSeconds);
  uint8_t client_nonce[kHandshakeNonceBytes];
  FillNonce(client_nonce);
  // Writer HELLO is the bare nonce (byte-identical to pre-role v3);
  // reader HELLO appends the role byte.
  uint8_t hello[kHandshakeNonceBytes + 1];
  std::memcpy(hello, client_nonce, kHandshakeNonceBytes);
  hello[kHandshakeNonceBytes] = static_cast<uint8_t>(role);
  const size_t hello_bytes = role == ShardSessionRole::kWriter
                                 ? kHandshakeNonceBytes
                                 : kHandshakeNonceBytes + 1;
  Status s = SendFrame(fd, ShardMessageType::kHello, hello, hello_bytes);
  if (!s.ok()) return s;
  ShardFrame frame;
  s = RecvHandshakeReply(fd, ShardMessageType::kChallenge, &frame);
  if (!s.ok()) return s;
  if (frame.payload.size() != kHandshakeNonceBytes + kProofBytes) {
    return Status::InvalidArgument("malformed handshake challenge");
  }
  const uint8_t* server_nonce = frame.payload.data();
  // Mutual: an impostor shard must not be handed graph state (or a
  // checkpoint path to scribble on), so the server proves first.
  uint8_t expect[kProofBytes];
  ComputeProof(secret, ServerDomain(role), client_nonce, server_nonce,
               expect);
  if (!ConstantTimeEqual(frame.payload.data() + kHandshakeNonceBytes,
                         expect, kProofBytes)) {
    return AuthFailed();
  }
  uint8_t proof[kProofBytes];
  ComputeProof(secret, ClientDomain(role), client_nonce, server_nonce,
               proof);
  s = SendFrame(fd, ShardMessageType::kAuth, proof, sizeof(proof));
  if (!s.ok()) return s;
  s = RecvHandshakeReply(fd, ShardMessageType::kAck, &frame);
  if (!s.ok()) return s;
  SetShardSocketTimeout(fd, 0);  // Established: back to blocking I/O.
  return Status::Ok();
}

Status ServerHandshake(int fd, const std::string& secret,
                       ShardSessionRole* role_out) {
  // A best-effort error reply, then the non-OK return tells the caller
  // to drop the connection. Nothing a peer sends before proving the
  // secret reaches any other handler, commands more than a tiny
  // allocation, or holds the connection open past the deadline.
  SetShardSocketTimeout(fd, kHandshakeTimeoutSeconds);
  const auto refuse = [fd](Status error) {
    const std::vector<uint8_t> payload = EncodeShardError(error);
    SendFrame(fd, ShardMessageType::kError, payload.data(), payload.size());
    return error;
  };
  ShardFrame frame;
  Status s = RecvFrameCapped(fd, &frame, kHandshakeMaxFrameBytes);
  if (!s.ok()) {
    if (s.code() == StatusCode::kInvalidArgument) refuse(s);
    return s;
  }
  // Bare 16-byte HELLO = writer (the pre-role v3 wire form); a 17th
  // byte declares the role. Any other shape — including an unknown
  // role value — is refused before the challenge is computed.
  ShardSessionRole role = ShardSessionRole::kWriter;
  if (frame.type != ShardMessageType::kHello ||
      frame.payload.size() < kHandshakeNonceBytes ||
      frame.payload.size() > kHandshakeNonceBytes + 1) {
    return refuse(Status::FailedPrecondition(
        "expected a HELLO handshake frame before any request"));
  }
  if (frame.payload.size() == kHandshakeNonceBytes + 1) {
    const uint8_t role_byte = frame.payload[kHandshakeNonceBytes];
    if (role_byte > static_cast<uint8_t>(ShardSessionRole::kReader)) {
      return refuse(Status::FailedPrecondition(
          "HELLO declares an unknown session role"));
    }
    role = static_cast<ShardSessionRole>(role_byte);
  }
  uint8_t client_nonce[kHandshakeNonceBytes];
  std::memcpy(client_nonce, frame.payload.data(), kHandshakeNonceBytes);
  uint8_t server_nonce[kHandshakeNonceBytes];
  FillNonce(server_nonce);
  uint8_t challenge[kHandshakeNonceBytes + kProofBytes];
  std::memcpy(challenge, server_nonce, kHandshakeNonceBytes);
  ComputeProof(secret, ServerDomain(role), client_nonce, server_nonce,
               challenge + kHandshakeNonceBytes);
  s = SendFrame(fd, ShardMessageType::kChallenge, challenge,
                sizeof(challenge));
  if (!s.ok()) return s;
  s = RecvFrameCapped(fd, &frame, kHandshakeMaxFrameBytes);
  if (!s.ok()) {
    if (s.code() == StatusCode::kInvalidArgument) refuse(s);
    return s;
  }
  uint8_t expect[kProofBytes];
  ComputeProof(secret, ClientDomain(role), client_nonce, server_nonce,
               expect);
  if (frame.type != ShardMessageType::kAuth ||
      frame.payload.size() != kProofBytes ||
      !ConstantTimeEqual(frame.payload.data(), expect, kProofBytes)) {
    return refuse(AuthFailed());
  }
  const ShardAck ack;
  const std::vector<uint8_t> payload = EncodeShardAck(ack);
  s = SendFrame(fd, ShardMessageType::kAck, payload.data(), payload.size());
  if (!s.ok()) return s;
  SetShardSocketTimeout(fd, 0);  // Established: back to blocking.
  if (role_out != nullptr) *role_out = role;
  return s;
}

namespace {

// Routing-table fields shared by the standalone kEpoch payload and the
// embedded copy inside kConfig.
void WriteTable(const RoutingTable& table, ByteWriter* w) {
  GZ_CHECK(table.owners.size() == RoutingTable::kNumSlots);
  w->U64(table.epoch);
  w->U32(RoutingTable::kNumSlots);
  for (const int32_t owner : table.owners) w->I32(owner);
  w->U32(table.replication);
}

// Structural + range validation in one place: a table off the wire must
// be directly usable (every slot owned by a sane shard id, real epoch,
// sane replica count).
bool ReadTable(ByteReader* r, RoutingTable* table) {
  uint32_t num_slots = 0;
  if (!r->U64(&table->epoch) || !r->U32(&num_slots) ||
      num_slots != RoutingTable::kNumSlots || table->epoch == 0) {
    return false;
  }
  table->owners.assign(RoutingTable::kNumSlots, 0);
  for (int32_t& owner : table->owners) {
    if (!r->I32(&owner) || owner < 0 ||
        owner >= RoutingTable::kMaxShardId) {
      return false;
    }
  }
  if (!r->U32(&table->replication) || table->replication < 1 ||
      table->replication > RoutingTable::kMaxReplication) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeRoutingTable(const RoutingTable& table) {
  ByteWriter w;
  WriteTable(table, &w);
  return w.Take();
}

Status DecodeRoutingTable(const uint8_t* data, size_t size,
                          RoutingTable* out) {
  ByteReader r(data, size);
  if (!ReadTable(&r, out) || !r.Done()) {
    return Status::InvalidArgument("malformed routing table payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeShardConfig(const ShardConfig& sc) {
  const GraphZeppelinConfig& c = sc.config;
  ByteWriter w;
  w.U64(c.num_nodes);
  w.U64(c.seed);
  w.I32(c.cols);
  w.I32(c.rounds);
  w.I32(c.num_workers);
  w.U8(static_cast<uint8_t>(c.buffering));
  w.U8(static_cast<uint8_t>(c.storage));
  w.F64(c.gutter_fraction);
  w.U64(c.nodes_per_gutter_group);
  w.U64(c.gutter_tree_buffer_bytes);
  w.U64(c.gutter_tree_fanout);
  w.I32(c.query_threads);
  w.U32(c.heavy_hitter_width);
  w.U32(c.heavy_hitter_depth);
  w.U32(c.heavy_hitter_candidates);
  w.Str(c.disk_dir);
  w.Str(c.instance_tag);
  w.I32(sc.shard_id);
  WriteTable(sc.table, &w);
  w.Str(sc.restore_checkpoint);
  return w.Take();
}

Status DecodeShardConfig(const uint8_t* data, size_t size,
                         ShardConfig* out) {
  ByteReader r(data, size);
  GraphZeppelinConfig& c = out->config;
  uint8_t buffering = 0, storage = 0;
  const bool ok =
      r.U64(&c.num_nodes) && r.U64(&c.seed) && r.I32(&c.cols) &&
      r.I32(&c.rounds) && r.I32(&c.num_workers) && r.U8(&buffering) &&
      r.U8(&storage) && r.F64(&c.gutter_fraction) &&
      r.U64(&c.nodes_per_gutter_group) &&
      r.U64(&c.gutter_tree_buffer_bytes) && r.U64(&c.gutter_tree_fanout) &&
      r.I32(&c.query_threads) && r.U32(&c.heavy_hitter_width) &&
      r.U32(&c.heavy_hitter_depth) && r.U32(&c.heavy_hitter_candidates) &&
      r.Str(&c.disk_dir) && r.Str(&c.instance_tag) && r.I32(&out->shard_id) &&
      ReadTable(&r, &out->table) && r.Str(&out->restore_checkpoint) &&
      r.Done();
  if (!ok) return Status::InvalidArgument("malformed shard config payload");
  if (out->shard_id < 0 || out->shard_id >= RoutingTable::kMaxShardId) {
    return Status::InvalidArgument("shard config payload out of range");
  }
  // Full range validation: every field a GraphZeppelin GZ_CHECK (or a
  // sketch constructor, or an absurd allocation) would abort on must
  // bounce here instead — the payload came off a socket, and a bad
  // config must never take the worker process down. Geometry caps
  // mirror the snapshot header's; the fanout/buffer caps are checked
  // before the derived product so nothing overflows.
  if (buffering > 1 || storage > 1 || c.num_nodes < 2 ||
      c.num_nodes > (1ULL << 32) || c.num_workers < 1 ||
      c.num_workers > 4096 || c.cols < 1 || c.cols > 1024 ||
      c.rounds < 0 || c.rounds > 4096 ||
      !std::isfinite(c.gutter_fraction) || !(c.gutter_fraction > 0.0) ||
      c.gutter_fraction > 1024.0 || c.nodes_per_gutter_group < 1 ||
      c.gutter_tree_fanout < 2 || c.gutter_tree_fanout > (1ULL << 20) ||
      c.gutter_tree_buffer_bytes > (1ULL << 31) ||
      c.gutter_tree_buffer_bytes < 12 * c.gutter_tree_fanout ||
      c.query_threads < 0) {
    return Status::InvalidArgument("shard config payload out of range");
  }
  // Heavy-hitter knobs: width 0 disables the side sketch entirely;
  // otherwise the HeavyHitterSketch constructor's GZ_CHECKs (power-of-
  // two width, bounded depth/candidates) must bounce here first.
  if (c.heavy_hitter_width != 0 &&
      (c.heavy_hitter_width > CountMinSketch::kMaxWidth ||
       (c.heavy_hitter_width & (c.heavy_hitter_width - 1)) != 0 ||
       c.heavy_hitter_depth < 1 ||
       c.heavy_hitter_depth > CountMinSketch::kMaxDepth ||
       c.heavy_hitter_candidates < 1 ||
       c.heavy_hitter_candidates > HeavyHitterSketch::kMaxCandidates)) {
    return Status::InvalidArgument("shard config payload out of range");
  }
  c.buffering = static_cast<GraphZeppelinConfig::Buffering>(buffering);
  c.storage = static_cast<GraphZeppelinConfig::Storage>(storage);
  return Status::Ok();
}

std::vector<uint8_t> EncodeShardAck(const ShardAck& ack) {
  ByteWriter w;
  w.U64(ack.value0);
  w.U64(ack.value1);
  return w.Take();
}

Status DecodeShardAck(const uint8_t* data, size_t size, ShardAck* out) {
  ByteReader r(data, size);
  if (!r.U64(&out->value0) || !r.U64(&out->value1) || !r.Done()) {
    return Status::InvalidArgument("malformed shard ack payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeShardError(const Status& status) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

Status DecodeShardError(const uint8_t* data, size_t size, bool* decode_ok) {
  ByteReader r(data, size);
  uint32_t code = 0;
  std::string message;
  if (!r.U32(&code) || !r.Str(&message) || !r.Done() ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded) ||
      code == static_cast<uint32_t>(StatusCode::kOk)) {
    *decode_ok = false;
    return Status::InvalidArgument("malformed shard error payload");
  }
  *decode_ok = true;
  return Status(static_cast<StatusCode>(code), "shard: " + message);
}

std::vector<uint8_t> EncodeMigrateExtract(uint64_t lo, uint64_t hi) {
  ByteWriter w;
  w.U64(lo);
  w.U64(hi);
  return w.Take();
}

Status DecodeMigrateExtract(const uint8_t* data, size_t size, uint64_t* lo,
                            uint64_t* hi) {
  ByteReader r(data, size);
  if (!r.U64(lo) || !r.U64(hi) || !r.Done()) {
    return Status::InvalidArgument("malformed migrate-extract payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeSyncPosition(uint64_t num_updates,
                                        uint64_t delta_seq) {
  ByteWriter w;
  w.U64(num_updates);
  w.U64(delta_seq);
  return w.Take();
}

Status DecodeSyncPosition(const uint8_t* data, size_t size,
                          uint64_t* num_updates, uint64_t* delta_seq) {
  ByteReader r(data, size);
  if (!r.U64(num_updates) || !r.U64(delta_seq) || !r.Done()) {
    return Status::InvalidArgument("malformed sync-position payload");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeShardStatsEx(const ShardStatsEx& stats) {
  ByteWriter w;
  w.I32(stats.shard_id);
  w.U64(stats.epoch);
  w.U64(stats.num_updates);
  w.U64(stats.delta_seq);
  w.U64(stats.ram_bytes);
  w.U64(stats.num_nodes);
  w.U64(stats.seed);
  w.I32(stats.cols);
  w.I32(stats.rounds);
  w.U32(stats.replication);
  return w.Take();
}

Status DecodeShardStatsEx(const uint8_t* data, size_t size,
                          ShardStatsEx* out) {
  ByteReader r(data, size);
  const bool ok = r.I32(&out->shard_id) && r.U64(&out->epoch) &&
                  r.U64(&out->num_updates) && r.U64(&out->delta_seq) &&
                  r.U64(&out->ram_bytes) && r.U64(&out->num_nodes) &&
                  r.U64(&out->seed) && r.I32(&out->cols) &&
                  r.I32(&out->rounds) && r.U32(&out->replication) &&
                  r.Done();
  if (!ok) return Status::InvalidArgument("malformed stats-reply payload");
  // The geometry came off a socket and feeds zero-snapshot
  // construction; the caps mirror the config decoder's.
  if (out->shard_id < 0 || out->shard_id >= RoutingTable::kMaxShardId ||
      out->epoch == 0 || out->num_nodes < 2 ||
      out->num_nodes > (1ULL << 32) || out->cols < 1 || out->cols > 1024 ||
      out->rounds < 1 || out->rounds > 4096 || out->replication < 1 ||
      out->replication > RoutingTable::kMaxReplication) {
    return Status::InvalidArgument("stats-reply payload out of range");
  }
  return Status::Ok();
}

uint32_t RouteSlot(const Edge& e, uint64_t num_nodes) {
  const uint64_t idx = EdgeToIndex(e, num_nodes);
  // kNumSlots is a power of two, so the mask takes the hash's low bits
  // uniformly — no modulo bias for any downstream shard count (the old
  // hash % num_shards was biased whenever num_shards was not a power
  // of two; slot ownership is balanced by construction instead).
  static_assert((RoutingTable::kNumSlots &
                 (RoutingTable::kNumSlots - 1)) == 0,
                "slot reduction must be a mask");
  return static_cast<uint32_t>(XxHash64Word(idx, 0x7368617264ULL) &
                               (RoutingTable::kNumSlots - 1));
}

int RouteToShard(const Edge& e, uint64_t num_nodes,
                 const RoutingTable& table) {
  GZ_CHECK_MSG(table.owners.size() == RoutingTable::kNumSlots,
               "routing with an unset table");
  return table.owners[RouteSlot(e, num_nodes)];
}

RoutingTable MakeRoutingTable(int num_shards) {
  GZ_CHECK(num_shards >= 1 && num_shards < RoutingTable::kMaxShardId);
  RoutingTable table;
  table.epoch = 1;
  table.owners.resize(RoutingTable::kNumSlots);
  for (uint32_t s = 0; s < RoutingTable::kNumSlots; ++s) {
    table.owners[s] = static_cast<int32_t>(s % num_shards);
  }
  return table;
}

std::vector<int> TableOwners(const RoutingTable& table) {
  std::vector<int> owners(table.owners.begin(), table.owners.end());
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

namespace {

// Slots owned per shard id, over the ids present in `table` plus
// `extra` (so a brand-new shard shows up with count 0).
std::vector<std::pair<int, int>> OwnershipCounts(const RoutingTable& table,
                                                 int extra) {
  std::vector<int> ids = TableOwners(table);
  if (extra >= 0 &&
      std::find(ids.begin(), ids.end(), extra) == ids.end()) {
    ids.push_back(extra);
    std::sort(ids.begin(), ids.end());
  }
  std::vector<std::pair<int, int>> counts;
  for (const int id : ids) {
    int n = 0;
    for (const int32_t owner : table.owners) n += (owner == id);
    counts.push_back({id, n});
  }
  return counts;
}

}  // namespace

int TableSlotCount(const RoutingTable& table, int shard) {
  int n = 0;
  for (const int32_t owner : table.owners) n += (owner == shard);
  return n;
}

RoutingTable TableWithShardAdded(const RoutingTable& table, int new_shard) {
  GZ_CHECK(new_shard >= 0 && new_shard < RoutingTable::kMaxShardId);
  GZ_CHECK_MSG(TableOwners(table).size() < RoutingTable::kNumSlots,
               "slot table is full; cannot add another owner");
  RoutingTable out = table;
  out.epoch = table.epoch + 1;
  auto counts = OwnershipCounts(out, new_shard);
  const int target =
      static_cast<int>(RoutingTable::kNumSlots / counts.size());
  int own = 0;
  for (const auto& [id, n] : counts) {
    if (id == new_shard) own = n;
  }
  while (own < target) {
    // Steal one slot from the current largest owner (ties: smallest
    // id), taking its lowest-index slot — fully deterministic, so the
    // in-process and process-backed coordinators derive identical
    // tables.
    counts = OwnershipCounts(out, new_shard);
    int victim = -1, victim_count = -1;
    for (const auto& [id, n] : counts) {
      if (id != new_shard && n > victim_count) {
        victim = id;
        victim_count = n;
      }
    }
    GZ_CHECK(victim >= 0);
    for (uint32_t s = 0; s < RoutingTable::kNumSlots; ++s) {
      if (out.owners[s] == victim) {
        out.owners[s] = new_shard;
        break;
      }
    }
    ++own;
  }
  return out;
}

RoutingTable TableWithShardRemoved(const RoutingTable& table, int removed) {
  RoutingTable out = table;
  out.epoch = table.epoch + 1;
  for (uint32_t s = 0; s < RoutingTable::kNumSlots; ++s) {
    if (out.owners[s] != removed) continue;
    // Deal to the remaining owner with the fewest slots (ties:
    // smallest id).
    auto counts = OwnershipCounts(out, -1);
    int heir = -1, heir_count = -1;
    for (const auto& [id, n] : counts) {
      if (id != removed && (heir < 0 || n < heir_count)) {
        heir = id;
        heir_count = n;
      }
    }
    GZ_CHECK_MSG(heir >= 0, "cannot remove the last shard");
    out.owners[s] = heir;
  }
  return out;
}

RoutingTable TableWithShardSplit(const RoutingTable& table, int source,
                                 int new_shard) {
  GZ_CHECK(new_shard >= 0 && new_shard < RoutingTable::kMaxShardId);
  // A 1-slot source would leave the child with nothing: a live shard
  // no table row points at, invisible to every owner-derived walk
  // (including the heir search a later removal runs). Callers guard
  // this with a Status; here it is a programmer error.
  GZ_CHECK_MSG(TableSlotCount(table, source) >= 2,
               "split source owns fewer than two slots");
  RoutingTable out = table;
  out.epoch = table.epoch + 1;
  bool take = false;
  for (uint32_t s = 0; s < RoutingTable::kNumSlots; ++s) {
    if (out.owners[s] != source) continue;
    if (take) out.owners[s] = new_shard;
    take = !take;
  }
  return out;
}

}  // namespace gz
