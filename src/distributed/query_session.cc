#include "distributed/query_session.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>

#include <poll.h>
#include <unistd.h>

namespace gz {
namespace {

// Two position sweeps agree iff the same connections are alive and
// every live one reports the same (shard, epoch, updates, delta_seq)
// tuple — the seqlock's "sequence unchanged" check. Monotonicity of
// the position components makes equality proof of an unmoved position,
// not a coincidence; an alive-set change is treated as movement too
// (the staged pulls may have come from a connection that then died
// mid-sweep).
bool SamePosition(const std::vector<ShardStatsEx>& a,
                  const std::vector<bool>& alive_a,
                  const std::vector<ShardStatsEx>& b,
                  const std::vector<bool>& alive_b) {
  if (alive_a != alive_b) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!alive_a[i]) continue;
    if (a[i].shard_id != b[i].shard_id || a[i].epoch != b[i].epoch ||
        a[i].num_updates != b[i].num_updates ||
        a[i].delta_seq != b[i].delta_seq) {
      return false;
    }
  }
  return true;
}

}  // namespace

QuerySession::QuerySession(QuerySessionOptions options)
    : options_(std::move(options)), cache_(options_.nodes_per_chunk) {}

QuerySession::~QuerySession() { StopWatch(); }

Status QuerySession::Connect() {
  conns_.clear();
  conn_alive_.clear();
  conn_shard_ids_.clear();
  conn_error_ = Status::Ok();
  cache_.Invalidate();  // Cached content may predate a re-dial.
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("query session has no endpoints");
  }
  for (const std::string& uri : options_.endpoints) {
    Result<ShardEndpoint> parsed = ParseShardEndpoint(uri);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().local()) {
      return Status::InvalidArgument(
          "query sessions dial listeners, not local: endpoints (" + uri +
          ")");
    }
    auto conn = std::make_unique<TcpShardTransport>(
        std::move(parsed).value(), options_.auth_secret,
        ShardSessionRole::kReader);
    Status s = conn->Connect();
    if (!s.ok()) return s;
    // The handshake ran under (and then cleared) its own deadline; from
    // here on every receive runs under the session's. Armed once — an
    // OS-level socket timeout, so a silent listener costs one deadline,
    // not an eternal block.
    if (options_.receive_deadline_seconds > 0) {
      SetShardSocketTimeout(conn->fd(), options_.receive_deadline_seconds);
    }
    conns_.push_back(std::move(conn));
    conn_alive_.push_back(true);
    conn_shard_ids_.push_back(-1);
  }
  return Status::Ok();
}

Status QuerySession::ReadPositions(std::vector<ShardStatsEx>* stats) {
  stats->clear();
  stats->resize(conns_.size());
  std::vector<bool> sent(conns_.size(), false);
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (!conn_alive_[i]) continue;
    Status s =
        SendFrame(conns_[i]->fd(), ShardMessageType::kStatsEx, nullptr, 0);
    if (s.ok()) {
      sent[i] = true;
    } else {
      conn_alive_[i] = false;
      conn_error_ = s;
    }
  }
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (!sent[i]) continue;
    bool in_sync = false;
    Status s = RecvReply(conns_[i]->fd(), ShardMessageType::kStatsReply,
                         &reply_buf_, &in_sync);
    if (s.ok()) {
      s = DecodeShardStatsEx(reply_buf_.payload.data(),
                             reply_buf_.payload.size(), &(*stats)[i]);
    }
    if (!s.ok()) {
      // Transport loss, a deadline expiry, or a garbled payload: the
      // request/reply stream is unrecoverable either way (a late reply
      // would answer the wrong request), so the connection is done.
      conn_alive_[i] = false;
      conn_error_ = s;
      continue;
    }
    conn_shard_ids_[i] = static_cast<int>((*stats)[i].shard_id);
  }
  for (const bool alive : conn_alive_) {
    if (alive) return Status::Ok();
  }
  return conn_error_.ok()
             ? Status::FailedPrecondition("query session not connected")
             : conn_error_;
}

Status QuerySession::BuildView(const std::vector<ShardStatsEx>& stats,
                               PositionView* view) {
  *view = PositionView();
  size_t first = conns_.size();
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conn_alive_[i]) {
      first = i;
      break;
    }
  }
  // ReadPositions already failed the sweep if nothing was alive.
  view->epoch = stats[first].epoch;
  view->params.num_nodes = stats[first].num_nodes;
  view->params.seed = stats[first].seed;
  view->params.cols = stats[first].cols;
  view->params.rounds = stats[first].rounds;
  const uint32_t replication = stats[first].replication;
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (!conn_alive_[i]) continue;
    const ShardStatsEx& st = stats[i];
    if (st.num_nodes != view->params.num_nodes ||
        st.seed != view->params.seed || st.cols != view->params.cols ||
        st.rounds != view->params.rounds) {
      return Status::FailedPrecondition(
          "shard listeners disagree on sketch geometry; these "
          "endpoints are not one cluster");
    }
    if (st.replication != replication) {
      return Status::FailedPrecondition(
          "shard listeners disagree on the replication factor; these "
          "endpoints are not one cluster");
    }
    if (st.epoch != view->epoch) view->skew = true;
    view->groups[static_cast<int>(st.shard_id)].push_back(i);
  }
  for (const auto& [shard, members] : view->groups) {
    if (members.size() > replication) {
      // A deployment mistake — two listeners told to host the same
      // shard — not a moving position. With no replication the classic
      // message; with it, the group exceeded the advertised factor.
      if (replication <= 1) {
        return Status::FailedPrecondition(
            "two endpoints serve shard id " + std::to_string(shard) +
            "; each listener must host a distinct shard");
      }
      return Status::FailedPrecondition(
          std::to_string(members.size()) + " endpoints serve shard id " +
          std::to_string(shard) + " but the cluster replicates " +
          std::to_string(replication) + " ways");
    }
    // Replicas of one shard are bitwise-equal AT ONE POSITION; an
    // update fan-out or repair caught mid-flight makes them disagree
    // transiently. Skew, like an epoch straddle — never an error.
    const ShardStatsEx& lead = stats[members[0]];
    for (const size_t m : members) {
      if (stats[m].num_updates != lead.num_updates ||
          stats[m].delta_seq != lead.delta_seq) {
        view->skew = true;
      }
    }
    ShardWatermark mark;
    mark.num_updates = lead.num_updates;
    mark.delta_seq = lead.delta_seq;
    view->marks.emplace(shard, mark);
    view->total_updates += lead.num_updates;
  }
  // Coverage: a dead connection is survivable only if some live replica
  // still serves its shard. A dead conn that never reported a shard id
  // might have been the only one serving it — the saved transport
  // error, not a silently smaller cluster, is the answer.
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conn_alive_[i]) continue;
    if (conn_shard_ids_[i] < 0 ||
        view->groups.find(conn_shard_ids_[i]) == view->groups.end()) {
      return conn_error_;
    }
  }
  return Status::Ok();
}

Status QuerySession::PullRange(size_t conn, uint64_t lo, uint64_t hi,
                               std::vector<uint8_t>* delta) {
  const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
  Status s = SendFrame(conns_[conn]->fd(),
                       ShardMessageType::kMigrateExtract, req.data(),
                       req.size());
  if (!s.ok()) {
    conn_alive_[conn] = false;
    conn_error_ = s;
    return s;
  }
  bool in_sync = false;
  s = RecvReply(conns_[conn]->fd(), ShardMessageType::kMigrateData,
                &reply_buf_, &in_sync);
  if (!s.ok()) {
    if (!in_sync) {
      conn_alive_[conn] = false;
      conn_error_ = s;
    }
    return s;
  }
  *delta = std::move(reply_buf_.payload);
  return Status::Ok();
}

Status QuerySession::Snapshot(const GraphSnapshot** out) {
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  last_refresh_rounds_ = 0;
  Status last = Status::Ok();
  std::vector<ShardStatsEx> t0, t1;
  for (int attempt = 0; attempt < options_.max_position_retries;
       ++attempt) {
    ++last_refresh_rounds_;
    Status s = ReadPositions(&t0);
    if (!s.ok()) return s;
    const std::vector<bool> alive0 = conn_alive_;
    // One cluster position: every shard at the same epoch and geometry,
    // replicas in agreement. Skew is a broadcast or fan-out caught
    // mid-flight — a moving position, so retry.
    PositionView view;
    s = BuildView(t0, &view);
    if (!s.ok()) return s;
    if (view.skew) {
      last = Status::FailedPrecondition(
          "shards straddle a routing-epoch broadcast");
      continue;
    }
    if (cache_.Fresh(view.epoch, view.marks)) {
      *out = &cache_.merged();
      return Status::Ok();
    }
    // Pre-stage every pull the refresh will make, THEN re-read the
    // positions: only if nothing moved do the staged bytes enter the
    // cache. (Staging everything first is what makes the t0 == t1
    // check meaningful — a pull after the check would be unverified.)
    // Each chunk comes from any live replica of its shard: replicas
    // are bitwise-equal at the position t0 == t1 certifies, so the
    // pull fails over past a replica that dies mid-stage.
    std::map<std::pair<int, uint64_t>, std::vector<uint8_t>> staged;
    bool stage_error = false;
    for (const int shard : cache_.PlannedPulls(view.epoch, view.marks)) {
      const auto group = view.groups.find(shard);
      if (group == view.groups.end()) {
        return Status::Internal("planned pull for an unknown shard id");
      }
      const uint64_t step = options_.nodes_per_chunk == 0
                                ? view.params.num_nodes
                                : options_.nodes_per_chunk;
      for (uint64_t lo = 0; lo < view.params.num_nodes && !stage_error;
           lo += step) {
        const uint64_t hi =
            std::min<uint64_t>(view.params.num_nodes, lo + step);
        s = Status::Ok();
        bool pulled = false;
        for (const size_t conn : group->second) {
          if (!conn_alive_[conn]) continue;
          s = PullRange(conn, lo, hi, &staged[{shard, lo}]);
          if (s.ok()) {
            pulled = true;
            break;
          }
          if (s.code() == StatusCode::kFailedPrecondition) break;
        }
        if (pulled) continue;
        if (s.ok() || s.code() == StatusCode::kFailedPrecondition) {
          // "shard not configured" (a writer bounce mid-stage), or the
          // last replica died earlier in the stage: the position will
          // have moved or the alive-set changed; retry the round. (The
          // next round's coverage check surfaces an uncovered shard.)
          last = s.ok() ? conn_error_ : s;
          stage_error = true;
        } else {
          return s;
        }
      }
    }
    if (stage_error) continue;
    s = ReadPositions(&t1);
    if (!s.ok()) return s;
    if (!SamePosition(t0, alive0, t1, conn_alive_)) {
      last = Status::FailedPrecondition(
          "cluster position moved during the refresh");
      continue;
    }
    s = cache_.Refresh(
        view.epoch, view.marks, view.total_updates, view.params,
        [&staged](int shard, uint64_t lo, uint64_t hi,
                  std::vector<uint8_t>* delta) {
          (void)hi;
          auto it = staged.find({shard, lo});
          if (it == staged.end()) {
            // A cold rebuild wanted a chunk the plan did not stage
            // (cache was valid, then a geometry-level invalidation
            // struck mid-round). Refresh invalidates on this error, so
            // the NEXT round plans — and stages — every shard.
            return Status::Internal("refresh chunk was not pre-staged");
          }
          *delta = std::move(it->second);
          return Status::Ok();
        });
    if (!s.ok()) {
      last = s;
      continue;
    }
    *out = &cache_.merged();
    return Status::Ok();
  }
  return Status(StatusCode::kResourceExhausted,
                "cluster position kept moving; refresh did not stabilize "
                "within " +
                    std::to_string(options_.max_position_retries) +
                    " rounds (last: " + last.ToString() + ")");
}

Result<HeavyHitterSketch> QuerySession::HeavyHitters() {
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  // One position sweep builds the replica groups (and verifies
  // coverage); then one kHeavyHitters pull per shard, failing over
  // within the group like a refresh pull does.
  std::vector<ShardStatsEx> stats;
  Status s = ReadPositions(&stats);
  if (!s.ok()) return s;
  PositionView view;
  s = BuildView(stats, &view);
  if (!s.ok()) return s;
  HeavyHitterSketch merged;
  for (const auto& [shard, group] : view.groups) {
    (void)shard;
    bool pulled = false;
    Status err = Status::Ok();
    for (const size_t conn : group) {
      if (!conn_alive_[conn]) continue;
      s = SendFrame(conns_[conn]->fd(), ShardMessageType::kHeavyHitters,
                    nullptr, 0);
      if (!s.ok()) {
        conn_alive_[conn] = false;
        conn_error_ = s;
        err = s;
        continue;
      }
      bool in_sync = false;
      s = RecvReply(conns_[conn]->fd(), ShardMessageType::kHeavyHitterBytes,
                    &reply_buf_, &in_sync);
      if (!s.ok()) {
        if (!in_sync) {
          conn_alive_[conn] = false;
          conn_error_ = s;
          err = s;
          continue;
        }
        // An in-sync kError (tracking disabled, shard diverged) is the
        // same answer every replica would give; report it.
        return s;
      }
      Result<HeavyHitterSketch> hh = HeavyHitterSketch::Deserialize(
          reply_buf_.payload.data(), reply_buf_.payload.size());
      if (!hh.ok()) return hh.status();
      if (!merged.valid()) {
        merged = std::move(hh).value();
      } else {
        Status ms = merged.Merge(hh.value());
        if (!ms.ok()) return ms;
      }
      pulled = true;
      break;
    }
    if (!pulled) return err.ok() ? conn_error_ : err;
  }
  if (!merged.valid()) return Status::Internal("no heavy-hitter replies");
  return merged;
}

Status QuerySession::PollPositions(bool* fresh) {
  *fresh = false;
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  std::vector<ShardStatsEx> stats;
  Status s = ReadPositions(&stats);
  if (!s.ok()) return s;
  // Same validation Snapshot() runs: a configuration error (duplicate
  // shard beyond the replication factor, mixed geometry) is an ERROR
  // here too — reporting it as mere staleness would have a poller
  // serving its stale cache forever, never learning the deployment is
  // broken. Only genuine movement (epoch or replica skew) is stale.
  PositionView view;
  s = BuildView(stats, &view);
  if (!s.ok()) return s;
  if (view.skew) return Status::Ok();  // Mid-flight position = stale.
  *fresh = cache_.Fresh(view.epoch, view.marks);
  return Status::Ok();
}

Result<ConnectivityResult> QuerySession::Connectivity(int threads) {
  const GraphSnapshot* snap = nullptr;
  Status s = Snapshot(&snap);
  if (!s.ok()) return s;
  return gz::Connectivity(*snap, threads);
}

// ---- Standing queries ---------------------------------------------

uint64_t QuerySession::AddStandingQuery(const StandingQuerySpec& spec) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return registry_.Add(spec);
}

bool QuerySession::RemoveStandingQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return registry_.Remove(query_id);
}

uint64_t QuerySession::watch_notifications() const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return registry_.notifications();
}

uint64_t QuerySession::watch_evaluations() const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return registry_.evaluations();
}

size_t QuerySession::watch_notify_streams() const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return notify_conns_.size();
}

Status QuerySession::watch_error() const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  return watch_error_;
}

void QuerySession::OpenNotifyStreams() {
  // Extra reader sessions, one per endpoint, each converted into a
  // notify stream by kSubscribe. Every failure — dial, handshake, a
  // kError refusal (shard not yet configured), a garbled first frame —
  // just drops that stream: the cadence poll still covers its shard,
  // and a subscriber that wants pushes back can re-StartWatch later.
  for (const std::string& uri : options_.endpoints) {
    Result<ShardEndpoint> parsed = ParseShardEndpoint(uri);
    if (!parsed.ok()) continue;
    auto conn = std::make_unique<TcpShardTransport>(
        std::move(parsed).value(), options_.auth_secret,
        ShardSessionRole::kReader);
    if (!conn->Connect().ok()) continue;
    if (options_.receive_deadline_seconds > 0) {
      SetShardSocketTimeout(conn->fd(), options_.receive_deadline_seconds);
    }
    if (!SendFrame(conn->fd(), ShardMessageType::kSubscribe, nullptr, 0)
             .ok()) {
      continue;
    }
    // The 1:1 reply: the initial kNotify (current position), or kError.
    ShardFrame first;
    if (!RecvFrame(conn->fd(), &first).ok() ||
        first.type != ShardMessageType::kNotify) {
      continue;
    }
    std::lock_guard<std::mutex> lock(watch_mu_);
    notify_conns_.push_back(std::move(conn));
  }
}

Status QuerySession::StartWatch(const StandingWatchOptions& options,
                                StandingQueryNotifier notifier) {
  if (watching_.load()) {
    return Status::FailedPrecondition("watch already running");
  }
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  if (options.poll_interval_ms <= 0) {
    return Status::InvalidArgument("poll_interval_ms must be positive");
  }
  if (::pipe(watch_stop_pipe_) != 0) {
    return Status::IoError(std::string("watch stop pipe: ") +
                           std::strerror(errno));
  }
  watch_options_ = options;
  watch_notifier_ = std::move(notifier);
  watch_error_ = Status::Ok();
  watching_.store(true);
  watch_thread_ = std::thread([this] { WatchLoop(); });
  return Status::Ok();
}

void QuerySession::StopWatch() {
  if (!watching_.load()) return;
  const char byte = 'q';
  // A full pipe just means a wake-up is already pending.
  (void)!::write(watch_stop_pipe_[1], &byte, 1);
  watch_thread_.join();
  ::close(watch_stop_pipe_[0]);
  ::close(watch_stop_pipe_[1]);
  watch_stop_pipe_[0] = watch_stop_pipe_[1] = -1;
  std::lock_guard<std::mutex> lock(watch_mu_);
  notify_conns_.clear();
  watching_.store(false);
}

void QuerySession::WatchLoop() {
  if (watch_options_.subscribe) OpenNotifyStreams();
  ShardFrame frame;
  while (true) {
    // Wait for a push, the stop byte, or the fallback cadence. The
    // notify fds are registered alongside the stop pipe so a pushed
    // position change wakes the watcher immediately.
    std::vector<struct pollfd> pfds;
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      pfds.reserve(notify_conns_.size() + 1);
      struct pollfd stop;
      stop.fd = watch_stop_pipe_[0];
      stop.events = POLLIN;
      stop.revents = 0;
      pfds.push_back(stop);
      for (const auto& conn : notify_conns_) {
        struct pollfd p;
        p.fd = conn->fd();
        p.events = POLLIN;
        p.revents = 0;
        pfds.push_back(p);
      }
    }
    const int rc =
        ::poll(pfds.data(), pfds.size(), watch_options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) return;
    if (pfds[0].revents != 0) return;  // StopWatch.
    if (rc > 0) {
      // Drain one frame per readable stream; anything but a clean
      // kNotify (EOF, transport error, a stray frame type) retires the
      // stream — the cadence poll takes over for its shard.
      std::lock_guard<std::mutex> lock(watch_mu_);
      size_t conn_idx = 0;
      for (size_t i = 1; i < pfds.size(); ++i, ++conn_idx) {
        if (pfds[i].revents == 0) continue;
        // pfds[i] was built from notify_conns_ under the same mutex and
        // streams are only ever retired here, so indices still line up.
        const Status s =
            RecvFrame(notify_conns_[conn_idx]->fd(), &frame);
        if (!s.ok() || frame.type != ShardMessageType::kNotify) {
          notify_conns_.erase(notify_conns_.begin() + conn_idx);
          --conn_idx;
          continue;
        }
      }
    }
    WatchEvaluate();
  }
}

void QuerySession::WatchEvaluate() {
  std::lock_guard<std::mutex> lock(watch_mu_);
  if (registry_.size() == 0) return;
  // Probe first: a fresh position with nothing newly registered means
  // no fold and no pulls this cycle. (Snapshot() would conclude the
  // same, but the probe makes the steady-state cost of an idle watch
  // exactly one STATS_EX sweep per wake-up.)
  bool fresh = false;
  Status s = PollPositions(&fresh);
  if (!s.ok()) {
    watch_error_ = s;
    return;
  }
  if (fresh && !registry_.HasUnevaluated()) return;
  const GraphSnapshot* snap = nullptr;
  s = Snapshot(&snap);
  if (!s.ok()) {
    // Transient by design: a mid-reshard refresh that kept moving, or
    // a shard waiting on failover. The watch keeps running; the next
    // wake-up retries.
    watch_error_ = s;
    return;
  }
  const Result<size_t> fired = registry_.Evaluate(
      *snap, cache_.epoch(), watch_options_.threads, watch_notifier_);
  watch_error_ = fired.ok() ? Status::Ok() : fired.status();
}

}  // namespace gz
