#include "distributed/query_session.h"

#include <algorithm>
#include <map>
#include <utility>

namespace gz {
namespace {

// Two position sweeps agree iff every shard reports the same (epoch,
// updates, delta_seq) triple — the seqlock's "sequence unchanged"
// check. Monotonicity of all three components makes equality proof of
// an unmoved position, not a coincidence.
bool SamePosition(const std::vector<ShardStatsEx>& a,
                  const std::vector<ShardStatsEx>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].shard_id != b[i].shard_id || a[i].epoch != b[i].epoch ||
        a[i].num_updates != b[i].num_updates ||
        a[i].delta_seq != b[i].delta_seq) {
      return false;
    }
  }
  return true;
}

}  // namespace

QuerySession::QuerySession(QuerySessionOptions options)
    : options_(std::move(options)), cache_(options_.nodes_per_chunk) {}

QuerySession::~QuerySession() = default;

Status QuerySession::Connect() {
  conns_.clear();
  cache_.Invalidate();  // Cached content may predate a re-dial.
  if (options_.endpoints.empty()) {
    return Status::InvalidArgument("query session has no endpoints");
  }
  for (const std::string& uri : options_.endpoints) {
    Result<ShardEndpoint> parsed = ParseShardEndpoint(uri);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().local()) {
      return Status::InvalidArgument(
          "query sessions dial listeners, not local: endpoints (" + uri +
          ")");
    }
    auto conn = std::make_unique<TcpShardTransport>(
        std::move(parsed).value(), options_.auth_secret,
        ShardSessionRole::kReader);
    Status s = conn->Connect();
    if (!s.ok()) return s;
    conns_.push_back(std::move(conn));
  }
  return Status::Ok();
}

Status QuerySession::ReadPositions(std::vector<ShardStatsEx>* stats) {
  stats->clear();
  stats->resize(conns_.size());
  for (auto& conn : conns_) {
    Status s =
        SendFrame(conn->fd(), ShardMessageType::kStatsEx, nullptr, 0);
    if (!s.ok()) return s;
  }
  for (size_t i = 0; i < conns_.size(); ++i) {
    bool in_sync = false;
    Status s = RecvReply(conns_[i]->fd(), ShardMessageType::kStatsReply,
                         &reply_buf_, &in_sync);
    if (!s.ok()) return s;
    s = DecodeShardStatsEx(reply_buf_.payload.data(),
                           reply_buf_.payload.size(), &(*stats)[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status QuerySession::PullRange(size_t conn, uint64_t lo, uint64_t hi,
                               std::vector<uint8_t>* delta) {
  const std::vector<uint8_t> req = EncodeMigrateExtract(lo, hi);
  Status s = SendFrame(conns_[conn]->fd(),
                       ShardMessageType::kMigrateExtract, req.data(),
                       req.size());
  if (!s.ok()) return s;
  bool in_sync = false;
  s = RecvReply(conns_[conn]->fd(), ShardMessageType::kMigrateData,
                &reply_buf_, &in_sync);
  if (!s.ok()) return s;
  *delta = std::move(reply_buf_.payload);
  return Status::Ok();
}

Status QuerySession::Snapshot(const GraphSnapshot** out) {
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  last_refresh_rounds_ = 0;
  Status last = Status::Ok();
  std::vector<ShardStatsEx> t0, t1;
  for (int attempt = 0; attempt < options_.max_position_retries;
       ++attempt) {
    ++last_refresh_rounds_;
    Status s = ReadPositions(&t0);
    if (!s.ok()) return s;
    // One cluster position: every shard at the same epoch and
    // geometry, every shard id distinct. An epoch skew is a reshard
    // broadcast caught mid-flight — a moving position, so retry.
    const uint64_t epoch = t0[0].epoch;
    bool epoch_skew = false;
    ShardWatermarks marks;
    uint64_t total_updates = 0;
    for (const ShardStatsEx& st : t0) {
      if (st.epoch != epoch) epoch_skew = true;
      if (st.num_nodes != t0[0].num_nodes || st.seed != t0[0].seed ||
          st.cols != t0[0].cols || st.rounds != t0[0].rounds) {
        return Status::FailedPrecondition(
            "shard listeners disagree on sketch geometry; these "
            "endpoints are not one cluster");
      }
      ShardWatermark mark;
      mark.num_updates = st.num_updates;
      mark.delta_seq = st.delta_seq;
      if (!marks.emplace(st.shard_id, mark).second) {
        return Status::FailedPrecondition(
            "two endpoints serve shard id " +
            std::to_string(st.shard_id) +
            "; each listener must host a distinct shard");
      }
      total_updates += st.num_updates;
    }
    if (epoch_skew) {
      last = Status::FailedPrecondition(
          "shards straddle a routing-epoch broadcast");
      continue;
    }
    if (cache_.Fresh(epoch, marks)) {
      *out = &cache_.merged();
      return Status::Ok();
    }
    NodeSketchParams params;
    params.num_nodes = t0[0].num_nodes;
    params.seed = t0[0].seed;
    params.cols = t0[0].cols;
    params.rounds = t0[0].rounds;
    // Pre-stage every pull the refresh will make, THEN re-read the
    // positions: only if nothing moved do the staged bytes enter the
    // cache. (Staging everything first is what makes the t0 == t1
    // check meaningful — a pull after the check would be unverified.)
    std::map<std::pair<int, uint64_t>, std::vector<uint8_t>> staged;
    bool stage_error = false;
    for (const int shard : cache_.PlannedPulls(epoch, marks)) {
      size_t conn = conns_.size();
      for (size_t i = 0; i < t0.size(); ++i) {
        if (t0[i].shard_id == shard) conn = i;
      }
      if (conn == conns_.size()) {
        return Status::Internal("planned pull for an unknown shard id");
      }
      const uint64_t step = options_.nodes_per_chunk == 0
                                ? params.num_nodes
                                : options_.nodes_per_chunk;
      for (uint64_t lo = 0; lo < params.num_nodes && !stage_error;
           lo += step) {
        const uint64_t hi = std::min<uint64_t>(params.num_nodes, lo + step);
        s = PullRange(conn, lo, hi, &staged[{shard, lo}]);
        if (!s.ok()) {
          if (s.code() == StatusCode::kFailedPrecondition) {
            // "shard not configured": a writer bounce mid-stage. The
            // position will have moved; retry the round.
            last = s;
            stage_error = true;
          } else {
            return s;
          }
        }
      }
    }
    if (stage_error) continue;
    s = ReadPositions(&t1);
    if (!s.ok()) return s;
    if (!SamePosition(t0, t1)) {
      last = Status::FailedPrecondition(
          "cluster position moved during the refresh");
      continue;
    }
    s = cache_.Refresh(
        epoch, marks, total_updates, params,
        [&staged](int shard, uint64_t lo, uint64_t hi,
                  std::vector<uint8_t>* delta) {
          (void)hi;
          auto it = staged.find({shard, lo});
          if (it == staged.end()) {
            // A cold rebuild wanted a chunk the plan did not stage
            // (cache was valid, then a geometry-level invalidation
            // struck mid-round). Refresh invalidates on this error, so
            // the NEXT round plans — and stages — every shard.
            return Status::Internal("refresh chunk was not pre-staged");
          }
          *delta = std::move(it->second);
          return Status::Ok();
        });
    if (!s.ok()) {
      last = s;
      continue;
    }
    *out = &cache_.merged();
    return Status::Ok();
  }
  return Status(StatusCode::kResourceExhausted,
                "cluster position kept moving; refresh did not stabilize "
                "within " +
                    std::to_string(options_.max_position_retries) +
                    " rounds (last: " + last.ToString() + ")");
}

Status QuerySession::PollPositions(bool* fresh) {
  *fresh = false;
  if (conns_.empty()) {
    return Status::FailedPrecondition("query session not connected");
  }
  std::vector<ShardStatsEx> stats;
  Status s = ReadPositions(&stats);
  if (!s.ok()) return s;
  const uint64_t epoch = stats[0].epoch;
  ShardWatermarks marks;
  for (const ShardStatsEx& st : stats) {
    if (st.epoch != epoch) return Status::Ok();  // Mid-reshard = stale.
    ShardWatermark mark;
    mark.num_updates = st.num_updates;
    mark.delta_seq = st.delta_seq;
    if (!marks.emplace(st.shard_id, mark).second) return Status::Ok();
  }
  *fresh = cache_.Fresh(epoch, marks);
  return Status::Ok();
}

Result<ConnectivityResult> QuerySession::Connectivity(int threads) {
  const GraphSnapshot* snap = nullptr;
  Status s = Snapshot(&snap);
  if (!s.ok()) return s;
  return gz::Connectivity(*snap, threads);
}

}  // namespace gz
