#include "core/graph_snapshot.h"

#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace gz {
namespace {

// Shared by checkpoint files and network frames; bump the trailing
// version digits on layout changes.
constexpr char kSnapshotMagic[8] = {'G', 'Z', 'S', 'N', 'A', 'P', '0', '1'};
// Pre-GraphSnapshot checkpoints: identical byte layout under a
// different magic. Accepted on read so old checkpoints stay restorable.
constexpr char kLegacyCheckpointMagic[8] = {'G', 'Z', 'C', 'K',
                                            'P', 'T', '0', '1'};

constexpr size_t kHeaderBytes = sizeof(kSnapshotMagic) +
                                sizeof(uint64_t) +  // num_nodes
                                sizeof(uint64_t) +  // seed
                                sizeof(int32_t) +   // cols
                                sizeof(int32_t) +   // rounds
                                sizeof(uint64_t);   // num_updates

// Node-range deltas (migration units) use their own magic: a range is
// not a whole snapshot and must never be mistaken for one.
constexpr char kRangeMagic[8] = {'G', 'Z', 'S', 'N', 'R', 'G', '0', '1'};

constexpr size_t kRangeHeaderBytes = sizeof(kRangeMagic) +
                                     sizeof(uint64_t) +  // num_nodes
                                     sizeof(uint64_t) +  // seed
                                     sizeof(int32_t) +   // cols
                                     sizeof(int32_t) +   // rounds
                                     sizeof(uint64_t) +  // lo
                                     sizeof(uint64_t);   // hi

struct SnapshotHeader {
  NodeSketchParams params;
  uint64_t num_updates = 0;
};

void WriteHeader(const NodeSketchParams& params, uint64_t num_updates,
                 uint8_t* out) {
  std::memcpy(out, kSnapshotMagic, sizeof(kSnapshotMagic));
  out += sizeof(kSnapshotMagic);
  const uint64_t num_nodes = params.num_nodes;
  const uint64_t seed = params.seed;
  const int32_t cols = params.cols;
  const int32_t rounds = params.rounds;
  std::memcpy(out, &num_nodes, sizeof(num_nodes));
  out += sizeof(num_nodes);
  std::memcpy(out, &seed, sizeof(seed));
  out += sizeof(seed);
  std::memcpy(out, &cols, sizeof(cols));
  out += sizeof(cols);
  std::memcpy(out, &rounds, sizeof(rounds));
  out += sizeof(rounds);
  std::memcpy(out, &num_updates, sizeof(num_updates));
}

// Parses and sanity-checks the fixed-size header. The bounds are
// generous but keep a garbage header from driving a huge allocation.
Status ParseHeader(const uint8_t* in, SnapshotHeader* header) {
  if (std::memcmp(in, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0 &&
      std::memcmp(in, kLegacyCheckpointMagic,
                  sizeof(kLegacyCheckpointMagic)) != 0) {
    return Status::InvalidArgument("not a GraphSnapshot: bad magic");
  }
  in += sizeof(kSnapshotMagic);
  uint64_t num_nodes = 0, seed = 0, num_updates = 0;
  int32_t cols = 0, rounds = 0;
  std::memcpy(&num_nodes, in, sizeof(num_nodes));
  in += sizeof(num_nodes);
  std::memcpy(&seed, in, sizeof(seed));
  in += sizeof(seed);
  std::memcpy(&cols, in, sizeof(cols));
  in += sizeof(cols);
  std::memcpy(&rounds, in, sizeof(rounds));
  in += sizeof(rounds);
  std::memcpy(&num_updates, in, sizeof(num_updates));
  // num_nodes is capped at the NodeId (uint32) range; the geometry caps
  // keep one record's size sane. Together with the overflow guard below
  // they make a garbage header an error, never a huge allocation.
  if (num_nodes < 2 || num_nodes > (1ULL << 32) || cols < 1 ||
      cols > 1024 || rounds < 1 || rounds > 4096) {
    return Status::InvalidArgument("malformed GraphSnapshot header");
  }
  header->params.num_nodes = num_nodes;
  header->params.seed = seed;
  header->params.cols = cols;
  header->params.rounds = rounds;
  header->num_updates = num_updates;
  const size_t record = NodeSketch::SerializedSizeFor(header->params);
  if (num_nodes > (SIZE_MAX - kHeaderBytes) / record) {
    return Status::InvalidArgument("malformed GraphSnapshot header");
  }
  return Status::Ok();
}

// Expected total byte size of the snapshot `header` describes.
size_t ExpectedBytes(const SnapshotHeader& header) {
  return kHeaderBytes + header.params.num_nodes *
                            NodeSketch::SerializedSizeFor(header.params);
}

// Opens `path` and parses the snapshot header found at `offset` bytes
// in (callers embedding a snapshot stream after their own prefix pass
// its size). On success the stream is positioned at the first node
// record and the body length has been verified to cover every record
// (trailing bytes are tolerated).
Status OpenSnapshotFile(const std::string& path, FILE** out,
                        SnapshotHeader* header, size_t offset = 0) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open snapshot file: " + path);
  }
  if (offset != 0 &&
      std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek snapshot file: " + path);
  }
  uint8_t header_buf[kHeaderBytes];
  if (std::fread(header_buf, 1, kHeaderBytes, f) != kHeaderBytes) {
    std::fclose(f);
    return Status::InvalidArgument("malformed snapshot header: " + path);
  }
  Status s = ParseHeader(header_buf, header);
  if (!s.ok()) {
    std::fclose(f);
    return s;
  }
  // Size check up front: a corrupt node count must not drive the
  // caller's allocations past what the file can actually back.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek snapshot file: " + path);
  }
  const long file_bytes = std::ftell(f);
  if (file_bytes < 0 || static_cast<size_t>(file_bytes) <
                            offset + ExpectedBytes(*header)) {
    std::fclose(f);
    return Status::IoError("truncated snapshot file: " + path);
  }
  if (std::fseek(f, static_cast<long>(offset + kHeaderBytes), SEEK_SET) !=
      0) {
    std::fclose(f);
    return Status::IoError("cannot seek snapshot file: " + path);
  }
  *out = f;
  return Status::Ok();
}

}  // namespace

GraphSnapshot::GraphSnapshot(std::vector<NodeSketch> sketches,
                             uint64_t num_updates)
    : num_updates_(num_updates), sketches_(std::move(sketches)) {
  GZ_CHECK_MSG(!sketches_.empty(), "snapshot needs at least one sketch");
  GZ_CHECK_MSG(sketches_.size() == sketches_[0].params().num_nodes,
               "need one node sketch per vertex");
  for (const NodeSketch& s : sketches_) {
    GZ_CHECK_MSG(s.params() == sketches_[0].params(),
                 "snapshot sketches must share params");
  }
}

const NodeSketchParams& GraphSnapshot::params() const {
  GZ_CHECK_MSG(valid(), "empty snapshot");
  return sketches_[0].params();
}

const NodeSketch& GraphSnapshot::sketch(NodeId node) const {
  GZ_CHECK_MSG(node < sketches_.size(), "node id out of range");
  return sketches_[node];
}

Status GraphSnapshot::Merge(const GraphSnapshot& other) {
  if (!valid() || !other.valid()) {
    return Status::InvalidArgument("cannot merge an empty snapshot");
  }
  if (!(params() == other.params())) {
    return Status::InvalidArgument(
        "snapshot params mismatch: merge requires identical seed, node "
        "bound and sketch geometry");
  }
  for (uint64_t i = 0; i < sketches_.size(); ++i) {
    sketches_[i].Merge(other.sketches_[i]);
  }
  num_updates_ += other.num_updates_;
  return Status::Ok();
}

Status GraphSnapshot::MergeNodeDelta(NodeId node, const NodeSketch& delta) {
  if (!valid()) return Status::InvalidArgument("empty snapshot");
  if (node >= sketches_.size()) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!(delta.params() == params())) {
    return Status::InvalidArgument(
        "delta sketch params do not match this snapshot");
  }
  sketches_[node].Merge(delta);
  return Status::Ok();
}

size_t GraphSnapshot::SerializedSize() const {
  GZ_CHECK_MSG(valid(), "empty snapshot");
  return kHeaderBytes + sketches_.size() * sketches_[0].SerializedSize();
}

size_t GraphSnapshot::SerializedSizeFor(const NodeSketchParams& params) {
  return kHeaderBytes +
         params.num_nodes * NodeSketch::SerializedSizeFor(params);
}

std::vector<uint8_t> GraphSnapshot::Serialize() const {
  std::vector<uint8_t> out(SerializedSize());
  WriteHeader(params(), num_updates_, out.data());
  uint8_t* cursor = out.data() + kHeaderBytes;
  const size_t record = sketches_[0].SerializedSize();
  for (const NodeSketch& s : sketches_) {
    s.SerializeTo(cursor);
    cursor += record;
  }
  return out;
}

Result<GraphSnapshot> GraphSnapshot::Deserialize(const uint8_t* data,
                                                 size_t size) {
  if (data == nullptr || size < kHeaderBytes) {
    return Status::InvalidArgument("GraphSnapshot buffer too short");
  }
  SnapshotHeader header;
  Status s = ParseHeader(data, &header);
  if (!s.ok()) return s;
  // Size check before any allocation: a corrupt node count must fail,
  // not drive a huge reserve.
  if (size != ExpectedBytes(header)) {
    return Status::InvalidArgument(
        "GraphSnapshot buffer size does not match its header");
  }
  const size_t record = NodeSketch::SerializedSizeFor(header.params);
  std::vector<NodeSketch> sketches;
  sketches.reserve(header.params.num_nodes);
  const uint8_t* cursor = data + kHeaderBytes;
  for (uint64_t i = 0; i < header.params.num_nodes; ++i) {
    sketches.emplace_back(header.params);
    sketches.back().DeserializeFrom(cursor);
    cursor += record;
  }
  return GraphSnapshot(std::move(sketches), header.num_updates);
}

Status GraphSnapshot::MergeSerialized(const uint8_t* data, size_t size) {
  if (!valid()) return Status::InvalidArgument("empty snapshot");
  if (data == nullptr || size < kHeaderBytes) {
    return Status::InvalidArgument("GraphSnapshot buffer too short");
  }
  SnapshotHeader header;
  Status s = ParseHeader(data, &header);
  if (!s.ok()) return s;
  if (size != ExpectedBytes(header)) {
    return Status::InvalidArgument(
        "GraphSnapshot buffer size does not match its header");
  }
  if (!(header.params == params())) {
    return Status::InvalidArgument(
        "snapshot params mismatch: merge requires identical seed, node "
        "bound and sketch geometry");
  }
  // Past this point nothing can fail, so the fold never leaves the
  // snapshot half-merged.
  NodeSketch scratch(header.params);
  const size_t record = NodeSketch::SerializedSizeFor(header.params);
  const uint8_t* cursor = data + kHeaderBytes;
  for (uint64_t i = 0; i < header.params.num_nodes; ++i) {
    scratch.DeserializeFrom(cursor);
    sketches_[i].Merge(scratch);
    cursor += record;
  }
  num_updates_ += header.num_updates;
  return Status::Ok();
}

size_t GraphSnapshot::SerializedRangeSizeFor(const NodeSketchParams& params,
                                             uint64_t lo, uint64_t hi) {
  GZ_CHECK_MSG(lo < hi && hi <= params.num_nodes, "bad node range");
  return kRangeHeaderBytes +
         (hi - lo) * NodeSketch::SerializedSizeFor(params);
}

namespace {

void WriteRangeHeader(const NodeSketchParams& params, uint64_t lo,
                      uint64_t hi, uint8_t* out) {
  std::memcpy(out, kRangeMagic, sizeof(kRangeMagic));
  out += sizeof(kRangeMagic);
  const uint64_t num_nodes = params.num_nodes;
  const uint64_t seed = params.seed;
  const int32_t cols = params.cols;
  const int32_t rounds = params.rounds;
  std::memcpy(out, &num_nodes, sizeof(num_nodes));
  out += sizeof(num_nodes);
  std::memcpy(out, &seed, sizeof(seed));
  out += sizeof(seed);
  std::memcpy(out, &cols, sizeof(cols));
  out += sizeof(cols);
  std::memcpy(out, &rounds, sizeof(rounds));
  out += sizeof(rounds);
  std::memcpy(out, &lo, sizeof(lo));
  out += sizeof(lo);
  std::memcpy(out, &hi, sizeof(hi));
}

}  // namespace

Status GraphSnapshot::ParseSerializedNodeRange(
    const uint8_t* data, size_t size, const NodeSketchParams& expect_params,
    uint64_t* lo, uint64_t* hi, size_t* payload_offset) {
  if (data == nullptr || size < kRangeHeaderBytes) {
    return Status::InvalidArgument("node-range delta buffer too short");
  }
  if (std::memcmp(data, kRangeMagic, sizeof(kRangeMagic)) != 0) {
    return Status::InvalidArgument("not a node-range delta: bad magic");
  }
  const uint8_t* in = data + sizeof(kRangeMagic);
  uint64_t num_nodes = 0, seed = 0, range_lo = 0, range_hi = 0;
  int32_t cols = 0, rounds = 0;
  std::memcpy(&num_nodes, in, sizeof(num_nodes));
  in += sizeof(num_nodes);
  std::memcpy(&seed, in, sizeof(seed));
  in += sizeof(seed);
  std::memcpy(&cols, in, sizeof(cols));
  in += sizeof(cols);
  std::memcpy(&rounds, in, sizeof(rounds));
  in += sizeof(rounds);
  std::memcpy(&range_lo, in, sizeof(range_lo));
  in += sizeof(range_lo);
  std::memcpy(&range_hi, in, sizeof(range_hi));
  if (num_nodes != expect_params.num_nodes || seed != expect_params.seed ||
      cols != expect_params.cols || rounds != expect_params.rounds) {
    return Status::InvalidArgument(
        "node-range delta params mismatch: fold requires identical seed, "
        "node bound and sketch geometry");
  }
  if (!(range_lo < range_hi && range_hi <= num_nodes)) {
    return Status::InvalidArgument("node-range delta has a bad range");
  }
  const size_t record = NodeSketch::SerializedSizeFor(expect_params);
  if (size != kRangeHeaderBytes + (range_hi - range_lo) * record) {
    return Status::InvalidArgument(
        "node-range delta size does not match its header");
  }
  *lo = range_lo;
  *hi = range_hi;
  if (payload_offset != nullptr) *payload_offset = kRangeHeaderBytes;
  return Status::Ok();
}

Status GraphSnapshot::SaveRangeToSink(
    const std::function<Status(const void* data, size_t size)>& sink,
    const NodeSketchParams& params, uint64_t lo, uint64_t hi,
    const std::function<const NodeSketch&(NodeId)>& load) {
  GZ_CHECK_MSG(lo < hi && hi <= params.num_nodes, "bad node range");
  uint8_t header[kRangeHeaderBytes];
  WriteRangeHeader(params, lo, hi, header);
  Status s = sink(header, kRangeHeaderBytes);
  std::vector<uint8_t> buf(NodeSketch::SerializedSizeFor(params));
  for (uint64_t i = lo; s.ok() && i < hi; ++i) {
    const NodeSketch& sketch = load(static_cast<NodeId>(i));
    GZ_CHECK_MSG(sketch.params() == params, "loader returned wrong params");
    sketch.SerializeTo(buf.data());
    s = sink(buf.data(), buf.size());
  }
  return s;
}

std::vector<uint8_t> GraphSnapshot::ExtractNodeRange(uint64_t lo,
                                                     uint64_t hi) const {
  GZ_CHECK_MSG(valid(), "empty snapshot");
  std::vector<uint8_t> out;
  out.reserve(SerializedRangeSizeFor(params(), lo, hi));
  GZ_CHECK_OK(SaveRangeToSink(
      [&out](const void* data, size_t size) {
        const uint8_t* p = static_cast<const uint8_t*>(data);
        out.insert(out.end(), p, p + size);
        return Status::Ok();
      },
      params(), lo, hi,
      [this](NodeId i) -> const NodeSketch& { return sketches_[i]; }));
  return out;
}

Status GraphSnapshot::MergeSerializedNodeRange(const uint8_t* data,
                                               size_t size) {
  if (!valid()) return Status::InvalidArgument("empty snapshot");
  uint64_t lo = 0, hi = 0;
  Status s = ParseSerializedNodeRange(data, size, params(), &lo, &hi);
  if (!s.ok()) return s;
  // Past this point nothing can fail, so the fold never leaves the
  // snapshot half-merged.
  NodeSketch scratch(params());
  const size_t record = NodeSketch::SerializedSizeFor(params());
  const uint8_t* cursor = data + kRangeHeaderBytes;
  for (uint64_t i = lo; i < hi; ++i) {
    scratch.DeserializeFrom(cursor);
    sketches_[i].Merge(scratch);
    cursor += record;
  }
  return Status::Ok();
}

std::vector<NodeSketch> GraphSnapshot::ReleaseSketches() {
  std::vector<NodeSketch> out = std::move(sketches_);
  sketches_.clear();
  num_updates_ = 0;
  return out;
}

Status GraphSnapshot::SaveToFile(const std::string& path) const {
  GZ_CHECK_MSG(valid(), "empty snapshot");
  return SaveStream(path, params(), num_updates_,
                    [this](NodeId i) -> const NodeSketch& {
                      return sketches_[i];
                    });
}

Status GraphSnapshot::SaveToSink(
    const std::function<Status(const void* data, size_t size)>& sink,
    const NodeSketchParams& params, uint64_t num_updates,
    const std::function<const NodeSketch&(NodeId)>& load) {
  uint8_t header[kHeaderBytes];
  WriteHeader(params, num_updates, header);
  Status s = sink(header, kHeaderBytes);
  // One record in flight: a sink (file or socket) never needs the
  // doubled footprint of a full Serialize() buffer.
  std::vector<uint8_t> buf(NodeSketch::SerializedSizeFor(params));
  for (uint64_t i = 0; s.ok() && i < params.num_nodes; ++i) {
    const NodeSketch& sketch = load(static_cast<NodeId>(i));
    GZ_CHECK_MSG(sketch.params() == params, "loader returned wrong params");
    sketch.SerializeTo(buf.data());
    s = sink(buf.data(), buf.size());
  }
  return s;
}

Status GraphSnapshot::SaveStream(
    const std::string& path, const NodeSketchParams& params,
    uint64_t num_updates,
    const std::function<const NodeSketch&(NodeId)>& load) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create snapshot file: " + path);
  }
  Status s = SaveToSink(
      [f, &path](const void* data, size_t size) {
        if (std::fwrite(data, 1, size, f) != size) {
          return Status::IoError("short write to snapshot file: " + path);
        }
        return Status::Ok();
      },
      params, num_updates, load);
  std::fclose(f);
  return s;
}

Result<GraphSnapshot> GraphSnapshot::LoadFromFile(const std::string& path) {
  FILE* f = nullptr;
  SnapshotHeader header;
  Status s = OpenSnapshotFile(path, &f, &header);
  if (!s.ok()) return s;
  const size_t record = NodeSketch::SerializedSizeFor(header.params);
  std::vector<NodeSketch> sketches;
  sketches.reserve(header.params.num_nodes);
  std::vector<uint8_t> buf(record);
  for (uint64_t i = 0; i < header.params.num_nodes; ++i) {
    if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      std::fclose(f);
      return Status::IoError("truncated snapshot file: " + path);
    }
    sketches.emplace_back(header.params);
    sketches.back().DeserializeFrom(buf.data());
  }
  std::fclose(f);
  return GraphSnapshot(std::move(sketches), header.num_updates);
}

Status GraphSnapshot::LoadStream(
    const std::string& path, const NodeSketchParams& expect_params,
    uint64_t* num_updates,
    const std::function<void(NodeId, const NodeSketch&)>& store,
    size_t offset) {
  FILE* f = nullptr;
  SnapshotHeader header;
  Status s = OpenSnapshotFile(path, &f, &header, offset);
  if (!s.ok()) return s;
  if (!(header.params == expect_params)) {
    std::fclose(f);
    return Status::InvalidArgument(
        "snapshot sketch parameters do not match this instance");
  }
  NodeSketch scratch(header.params);
  std::vector<uint8_t> buf(scratch.SerializedSize());
  for (uint64_t i = 0; i < header.params.num_nodes; ++i) {
    if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      std::fclose(f);
      return Status::IoError("truncated snapshot file: " + path);
    }
    scratch.DeserializeFrom(buf.data());
    store(static_cast<NodeId>(i), scratch);
  }
  std::fclose(f);
  if (num_updates != nullptr) *num_updates = header.num_updates;
  return Status::Ok();
}

}  // namespace gz
