#include "core/stream_ingestor.h"

#include "stream/stream_file.h"
#include "util/timer.h"

namespace gz {

Result<uint64_t> IngestStreamFile(GraphZeppelin* gz, const std::string& path,
                                  uint64_t callback_every,
                                  IngestProgressCallback callback) {
  StreamReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  if (reader.num_nodes() > gz->config().num_nodes) {
    return Status::InvalidArgument(
        "stream has more nodes than the GraphZeppelin instance");
  }

  WallTimer timer;
  IngestProgress progress;
  progress.total = reader.num_updates();
  GraphUpdate update;
  while (reader.Next(&update)) {
    gz->Update(update);
    ++progress.consumed;
    if (callback != nullptr && callback_every > 0 &&
        progress.consumed % callback_every == 0) {
      progress.seconds = timer.Seconds();
      callback(progress);
    }
  }
  if (!reader.status().ok()) return reader.status();
  gz->Flush();
  progress.seconds = timer.Seconds();
  if (callback != nullptr) callback(progress);
  return progress.consumed;
}

}  // namespace gz
