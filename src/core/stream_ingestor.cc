#include "core/stream_ingestor.h"

#include <algorithm>
#include <vector>

#include "stream/stream_file.h"
#include "util/timer.h"

namespace gz {

namespace {
// Updates read from the stream file per bulk hand-off. Spans this size
// keep the flat batch pipeline fed without growing resident state.
constexpr size_t kChunkUpdates = 4096;
}  // namespace

Result<uint64_t> IngestStreamFile(GraphZeppelin* gz, const std::string& path,
                                  uint64_t callback_every,
                                  IngestProgressCallback callback) {
  StreamReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;
  if (reader.num_nodes() > gz->config().num_nodes) {
    return Status::InvalidArgument(
        "stream has more nodes than the GraphZeppelin instance");
  }

  WallTimer timer;
  IngestProgress progress;
  progress.total = reader.num_updates();
  std::vector<GraphUpdate> chunk;
  chunk.reserve(kChunkUpdates);
  const bool callbacks_on = callback != nullptr && callback_every > 0;
  // The consumed count last reported through a boundary callback, so
  // the completion callback below can be suppressed when the stream
  // length is an exact multiple of callback_every (the boundary
  // callback at the last chunk already reported that exact count).
  uint64_t reported = UINT64_MAX;
  bool eof = false;
  while (!eof) {
    // Cap the chunk at the next progress boundary so callbacks fire at
    // exactly the consumed counts single-update ingestion would report.
    size_t limit = kChunkUpdates;
    if (callbacks_on) {
      const uint64_t to_boundary =
          callback_every - (progress.consumed % callback_every);
      limit = static_cast<size_t>(
          std::min<uint64_t>(limit, to_boundary));
    }
    chunk.clear();
    GraphUpdate update;
    while (chunk.size() < limit && reader.Next(&update)) {
      chunk.push_back(update);
    }
    eof = chunk.size() < limit;
    if (chunk.empty()) break;
    gz->Update(chunk.data(), chunk.size());
    progress.consumed += chunk.size();
    if (callbacks_on && progress.consumed % callback_every == 0) {
      progress.seconds = timer.Seconds();
      callback(progress);
      reported = progress.consumed;
    }
  }
  if (!reader.status().ok()) return reader.status();
  gz->Flush();
  if (callback != nullptr && progress.consumed != reported) {
    progress.seconds = timer.Seconds();
    callback(progress);
  }
  return progress.consumed;
}

}  // namespace gz
