// Sketch stores: where the V node sketches live during ingestion.
//
// InMemorySketchStore keeps them in RAM. OnDiskSketchStore keeps each
// node's sketch in a fixed-size region of a preallocated file and
// merges batched deltas with read-XOR-write cycles — the hybrid
// streaming model of Section 4, where batching (gutters) amortizes the
// per-update I/O cost.
//
// Thread safety: MergeDelta/Load are safe to call concurrently from
// many Graph Workers; stores lock per node. Following Section 5.1,
// workers accumulate a batch into a private delta sketch and the store
// only holds the lock for the XOR merge.
#ifndef GZ_CORE_SKETCH_STORE_H_
#define GZ_CORE_SKETCH_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class SketchStore {
 public:
  virtual ~SketchStore() = default;

  // XOR-merges `delta` (a sketch of a batch of updates) into `node`'s
  // sketch. `delta` must have been built with the store's params.
  virtual void MergeDelta(NodeId node, const NodeSketch& delta) = 0;

  // Copies `node`'s current sketch into `out` (constructed with the
  // store's params). Used by the connectivity query to take a snapshot.
  virtual void Load(NodeId node, NodeSketch* out) = 0;

  // Overwrites `node`'s sketch with `sketch` (params must match).
  // Used by checkpoint restore.
  virtual void Store(NodeId node, const NodeSketch& sketch) = 0;

  virtual size_t RamByteSize() const = 0;
  virtual size_t DiskByteSize() const = 0;

  const NodeSketchParams& params() const { return params_; }
  uint64_t num_nodes() const { return params_.num_nodes; }

 protected:
  explicit SketchStore(const NodeSketchParams& params) : params_(params) {}
  NodeSketchParams params_;
};

class InMemorySketchStore : public SketchStore {
 public:
  explicit InMemorySketchStore(const NodeSketchParams& params);

  void MergeDelta(NodeId node, const NodeSketch& delta) override;
  void Load(NodeId node, NodeSketch* out) override;
  void Store(NodeId node, const NodeSketch& sketch) override;
  size_t RamByteSize() const override;
  size_t DiskByteSize() const override { return 0; }

 private:
  std::vector<NodeSketch> sketches_;
  // One lock per node; 40 B each is negligible next to the sketches.
  std::unique_ptr<std::mutex[]> locks_;
};

class OnDiskSketchStore : public SketchStore {
 public:
  OnDiskSketchStore(const NodeSketchParams& params, std::string path);
  ~OnDiskSketchStore() override;

  // Creates and preallocates the backing file (all-zero regions are
  // valid empty sketches). Must be called before use.
  Status Init();

  void MergeDelta(NodeId node, const NodeSketch& delta) override;
  void Load(NodeId node, NodeSketch* out) override;
  void Store(NodeId node, const NodeSketch& sketch) override;
  size_t RamByteSize() const override;
  size_t DiskByteSize() const override;

  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  int fd_ = -1;
  size_t record_bytes_ = 0;  // Serialized node-sketch size (uniform).
  std::unique_ptr<std::mutex[]> locks_;
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace gz

#endif  // GZ_CORE_SKETCH_STORE_H_
