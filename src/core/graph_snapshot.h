// GraphSnapshot: the first-class, immutable query surface of the
// system — one node sketch per vertex captured at a flush barrier,
// together with the metadata (sketch params, seed, update count) that
// makes the capture self-describing.
//
// Sketch linearity (paper Section 3.1) is what makes this type more
// than a container: snapshots taken from *any* instances built with the
// same seed and geometry can be XOR-merged with Merge(), and the result
// is exactly the snapshot a single instance would have produced for the
// combined stream. That algebra is the sharded coordinator's
// aggregation step, and — via Serialize()/Deserialize() — the natural
// network frame for a multi-process split. Checkpointing is snapshot
// serialization to a file.
//
// All query algorithms (connectivity, spanning-forest decomposition,
// bipartiteness, MSF weight) consume `const GraphSnapshot&`; the
// destructive Boruvka scratch copy happens once inside the query
// engine, never at call sites.
#ifndef GZ_CORE_GRAPH_SNAPSHOT_H_
#define GZ_CORE_GRAPH_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

class GraphSnapshot {
 public:
  // Empty snapshot; valid() is false and every other accessor is
  // off-limits until one is move-assigned in.
  GraphSnapshot() = default;

  // Takes ownership of `sketches` (one per vertex, all built with
  // identical params). `num_updates` is the stream position the capture
  // represents.
  GraphSnapshot(std::vector<NodeSketch> sketches, uint64_t num_updates);

  GraphSnapshot(GraphSnapshot&&) = default;
  GraphSnapshot& operator=(GraphSnapshot&&) = default;
  GraphSnapshot(const GraphSnapshot&) = default;
  GraphSnapshot& operator=(const GraphSnapshot&) = default;

  bool valid() const { return !sketches_.empty(); }
  const NodeSketchParams& params() const;
  uint64_t num_nodes() const { return sketches_.size(); }
  uint64_t seed() const { return params().seed; }
  int rounds() const { return params().rounds; }
  uint64_t num_updates() const { return num_updates_; }

  const NodeSketch& sketch(NodeId node) const;
  const std::vector<NodeSketch>& sketches() const { return sketches_; }

  // Mutable copy of the sketch vector — the scratch the destructive
  // Boruvka engine consumes. Query entry points call this internally;
  // external callers rarely need it.
  std::vector<NodeSketch> CopySketches() const { return sketches_; }

  // Moves the sketches out, leaving this snapshot empty (valid() ==
  // false). Lets a query consume a temporary snapshot without a second
  // full copy of the sketch state.
  std::vector<NodeSketch> ReleaseSketches();

  // XOR-merges `other` into this snapshot (node-wise sketch sum, update
  // counts add). Fails with InvalidArgument unless both snapshots were
  // built with identical params — same seed, node bound and geometry —
  // since only then is the merge a sketch of the combined stream.
  Status Merge(const GraphSnapshot& other);

  // Node-granular merge: XORs `delta` (a sketch of some update subset
  // for `node`) into that node's sketch. This is the unit a sharded
  // coordinator uses to fold a shard in while materializing only one
  // scratch sketch at a time; call AddUpdates() once per folded source.
  Status MergeNodeDelta(NodeId node, const NodeSketch& delta);
  void AddUpdates(uint64_t count) { num_updates_ += count; }
  // Pins the stream position outright — for aggregators (the snapshot
  // cache) that rebuild sketch content from range deltas, which carry
  // no counts, and know the true total from their own bookkeeping.
  void SetUpdates(uint64_t count) { num_updates_ = count; }

  // --- Serialization -----------------------------------------------------
  // Byte layout: 8-byte magic, params (num_nodes, seed, cols, rounds),
  // update count, then num_nodes fixed-size node-sketch records.
  size_t SerializedSize() const;
  // Same, computed from params alone. A producer streaming records into
  // a length-prefixed frame (e.g. a shard replying over a socket) needs
  // the total before the first record exists.
  static size_t SerializedSizeFor(const NodeSketchParams& params);
  std::vector<uint8_t> Serialize() const;
  static Result<GraphSnapshot> Deserialize(const uint8_t* data, size_t size);

  // Streaming merge from serialized bytes: validates the header, checks
  // params against this snapshot, then XOR-folds each node record in
  // with one scratch sketch in flight — the coordinator's aggregation of
  // a shard's snapshot reply without materializing a second snapshot.
  // InvalidArgument on malformed bytes or a params mismatch; this
  // snapshot is unchanged on any error.
  Status MergeSerialized(const uint8_t* data, size_t size);

  // --- Node-range deltas ---------------------------------------------------
  // A serialized node-range delta is the sketch content of nodes
  // [lo, hi) under its own magic: 8-byte magic, params, the range
  // bounds, then hi-lo fixed-size node records. It is the unit of
  // elastic shard migration — a departing or splitting shard extracts
  // ranges of its state, the coordinator XOR-folds them into the
  // successor (and XOR-folds the same bytes back into the source to
  // cancel them there, which is how linearity expresses "move").
  //
  // Deltas deliberately carry NO update count: stream positions stay
  // with the shard that ingested the updates, and the coordinator
  // accounts for removed shards separately, so folding a delta never
  // perturbs replay reconciliation.
  static size_t SerializedRangeSizeFor(const NodeSketchParams& params,
                                       uint64_t lo, uint64_t hi);
  // Serializes this snapshot's nodes [lo, hi) as a range delta.
  std::vector<uint8_t> ExtractNodeRange(uint64_t lo, uint64_t hi) const;
  // XOR-folds a serialized range delta into this snapshot (one scratch
  // sketch in flight). InvalidArgument on malformed bytes or a params
  // mismatch; this snapshot is unchanged on any error. num_updates() is
  // never affected.
  Status MergeSerializedNodeRange(const uint8_t* data, size_t size);
  // Streaming producer of the ExtractNodeRange byte stream (header
  // first, then one record per `load` call) — how a shard streams a
  // migration delta into a socket frame without materializing it.
  static Status SaveRangeToSink(
      const std::function<Status(const void* data, size_t size)>& sink,
      const NodeSketchParams& params, uint64_t lo, uint64_t hi,
      const std::function<const NodeSketch&(NodeId)>& load);
  // Validates a range delta's header against `expect_params` and
  // returns its bounds; the payload must cover exactly hi-lo records.
  // `payload_offset` (optional) receives where the records start, so
  // consumers never re-derive the header size.
  static Status ParseSerializedNodeRange(const uint8_t* data, size_t size,
                                         const NodeSketchParams& expect_params,
                                         uint64_t* lo, uint64_t* hi,
                                         size_t* payload_offset = nullptr);

  // Generalized streaming producer: writes the exact Serialize() byte
  // stream through `sink` (header first, then one node record per call)
  // with only one record materialized at a time. SaveStream is this with
  // a file sink; a shard uses a socket sink to stream a snapshot into
  // its reply frame.
  static Status SaveToSink(
      const std::function<Status(const void* data, size_t size)>& sink,
      const NodeSketchParams& params, uint64_t num_updates,
      const std::function<const NodeSketch&(NodeId)>& load);

  // File forms, used by checkpointing. LoadFromFile distinguishes a
  // missing file (NotFound), a malformed header (InvalidArgument) and a
  // short body (IoError).
  Status SaveToFile(const std::string& path) const;
  static Result<GraphSnapshot> LoadFromFile(const std::string& path);

  // Streaming file forms: identical file format, but only one node
  // record is in flight, for producers/consumers that cannot afford a
  // materialized snapshot (e.g. checkpointing an out-of-core sketch
  // store). SaveStream pulls each node's sketch from `load` (the
  // returned reference only needs to stay valid until the next call);
  // LoadStream validates the header against `expect_params`
  // (InvalidArgument on mismatch), hands each record to `store`, and
  // returns the saved update count. `offset` skips a caller-owned
  // prefix first — how a shard checkpoint embeds a snapshot stream
  // after its own header.
  static Status SaveStream(
      const std::string& path, const NodeSketchParams& params,
      uint64_t num_updates,
      const std::function<const NodeSketch&(NodeId)>& load);
  static Status LoadStream(
      const std::string& path, const NodeSketchParams& expect_params,
      uint64_t* num_updates,
      const std::function<void(NodeId, const NodeSketch&)>& store,
      size_t offset = 0);

  friend bool operator==(const GraphSnapshot& a, const GraphSnapshot& b) {
    return a.num_updates_ == b.num_updates_ && a.sketches_ == b.sketches_;
  }

 private:
  uint64_t num_updates_ = 0;
  std::vector<NodeSketch> sketches_;
};

}  // namespace gz

#endif  // GZ_CORE_GRAPH_SNAPSHOT_H_
