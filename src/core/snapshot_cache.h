// SnapshotCache: the epoch-versioned merged-snapshot cache behind the
// serving tier. The expensive query object in a sharded deployment is
// the merged GraphSnapshot — today every query re-pulls and re-folds
// every shard. The cache keeps that merged snapshot alive between
// queries, keyed by the cluster's exact position:
//
//   key = (routing-table epoch, per-shard watermark)
//   watermark = (updates ingested, migration deltas folded)
//
// Both watermark components matter: a migration delta changes a
// shard's sketch *content* without changing its update count, so
// (epoch, updates) alone would serve stale bytes mid-reshard. Given
// FIFO per-shard sockets, a shard's sketch state is a pure function of
// its watermark — which is what makes the key sound.
//
// Refresh is incremental, riding the same XOR linearity as elastic
// migration: the cache also retains each shard's last-known content,
// so when shard s moves from content A to content B, folding A then B
// into the merged snapshot cancels A and installs B (A ^ A ^ B = B) —
// node-range pulls from ONLY the moved shards, never a full re-fold.
// A shard that vanished from the table (removed; its content migrated
// away) is cancelled the same way: fold its cached content once more.
//
// Cost model: memory is (num_shards + 1) x one snapshot (per-shard
// content + the merged result); refresh traffic is proportional to the
// content that actually moved. Queries between watermarks are O(1) —
// they never touch the ingest path.
//
// Not thread-safe; the owner (ShardCluster, ShardedGraphZeppelin,
// QuerySession) serializes access like every other coordinator call.
#ifndef GZ_CORE_SNAPSHOT_CACHE_H_
#define GZ_CORE_SNAPSHOT_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/graph_snapshot.h"
#include "sketch/node_sketch.h"
#include "util/status.h"

namespace gz {

// One shard's position: stream updates ingested + migration deltas
// folded. Equal watermarks (same epoch) imply bitwise-equal sketch
// content.
struct ShardWatermark {
  uint64_t num_updates = 0;
  uint64_t delta_seq = 0;

  friend bool operator==(const ShardWatermark& a, const ShardWatermark& b) {
    return a.num_updates == b.num_updates && a.delta_seq == b.delta_seq;
  }
  friend bool operator!=(const ShardWatermark& a, const ShardWatermark& b) {
    return !(a == b);
  }
};

// The cluster's full position; what the cache is keyed by.
using ShardWatermarks = std::map<int, ShardWatermark>;

class SnapshotCache {
 public:
  // Pulls one serialized node-range delta ([lo, hi), ExtractNodeRange
  // wire format) of `shard`'s current content into *delta. The cache
  // never cares where the bytes come from: a live RPC, an in-process
  // extract, or a pre-staged buffer.
  using RangePuller = std::function<Status(int shard, uint64_t lo,
                                           uint64_t hi,
                                           std::vector<uint8_t>* delta)>;

  // `nodes_per_chunk` bounds refresh scratch: each pull covers at most
  // this many nodes, so delta buffers stay small regardless of graph
  // size. 0 = one chunk per shard.
  explicit SnapshotCache(uint64_t nodes_per_chunk = 1 << 14)
      : nodes_per_chunk_(nodes_per_chunk) {}

  bool valid() const { return merged_.valid(); }

  // True iff the cached merged snapshot is exactly the cluster state at
  // (epoch, marks) — a query can be answered with zero pulls.
  bool Fresh(uint64_t epoch, const ShardWatermarks& marks) const {
    return valid() && epoch == epoch_ && marks == marks_;
  }

  // The shards Refresh(epoch, marks, ...) would pull content from —
  // callers that pre-stage pull buffers (QuerySession's consistency
  // protocol) need the exact set. Empty when Fresh().
  std::vector<int> PlannedPulls(uint64_t epoch,
                                const ShardWatermarks& marks) const;

  // Brings the merged snapshot to (epoch, marks): cancels vanished
  // shards, delta-refreshes moved ones (chunked pulls through
  // `puller`), installs new ones, then pins the update count to
  // `total_updates` (range deltas carry no counts; the owner's
  // bookkeeping is the truth). On any pull/fold error the cache is
  // invalidated — a half-applied refresh must never serve.
  Status Refresh(uint64_t epoch, const ShardWatermarks& marks,
                 uint64_t total_updates, const NodeSketchParams& params,
                 const RangePuller& puller);

  // The served snapshot; only meaningful when valid().
  const GraphSnapshot& merged() const { return merged_; }
  // The routing epoch the cached snapshot is keyed at (0 before the
  // first refresh). With merged().num_updates(), the position a
  // standing-query notification reports.
  uint64_t epoch() const { return epoch_; }

  void Invalidate();

  // Observability for tests and the serving bench.
  uint64_t refreshes() const { return refreshes_; }
  uint64_t cold_builds() const { return cold_builds_; }
  uint64_t range_pulls() const { return range_pulls_; }

 private:
  // THE needs-pull predicate — the single definition both
  // PlannedPulls() and Refresh() consult, so the plan can never drift
  // from the pulls actually performed. A shard needs a pull when its
  // watermark differs from the recorded one; a shard the cache has no
  // record of needs one exactly when its content can be nonzero (a
  // zero watermark means a brand-new shard whose content is still the
  // XOR identity).
  bool NeedsPull(int shard, const ShardWatermark& mark) const {
    const auto it = marks_.find(shard);
    const bool known = valid() && it != marks_.end();
    return known ? it->second != mark : mark != ShardWatermark{};
  }

  // Chunk-folds `shard`'s transition old-content -> new-content into
  // both the merged snapshot and the shard's cached content.
  Status PullShard(int shard, const NodeSketchParams& params,
                   const RangePuller& puller);

  uint64_t nodes_per_chunk_;
  uint64_t epoch_ = 0;
  ShardWatermarks marks_;
  GraphSnapshot merged_;
  // Last-known content per shard, as a same-params snapshot (update
  // counts unused). The XOR "cancel" material for the next refresh.
  std::map<int, GraphSnapshot> shard_content_;

  uint64_t refreshes_ = 0;
  uint64_t cold_builds_ = 0;
  uint64_t range_pulls_ = 0;
};

}  // namespace gz

#endif  // GZ_CORE_SNAPSHOT_CACHE_H_
