// Boruvka-over-sketches connectivity computation (paper Figure 9).
//
// Each round queries one fresh subsketch per current component for a cut
// edge, merges the endpoints' components in a DSU, and XOR-sums the
// merged components' sketches (linearity makes the sum a sketch of the
// merged component's cut vector). Rounds use independent subsketches
// because query answers feed back into later merges (adaptivity).
//
// The engine parallelizes each round's two heavy phases across a small
// thread pool — per-component cut sampling, and the XOR fold of merged
// components' sketches — while keeping the round barrier and a
// deterministic merge order, so the result is bitwise identical for any
// thread count.
#ifndef GZ_CORE_CONNECTIVITY_H_
#define GZ_CORE_CONNECTIVITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/graph_snapshot.h"
#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct ConnectivityResult {
  // True when the sketches could not complete Boruvka within the round
  // budget (probability polynomially small; Section 6.3 observes zero
  // failures in practice).
  bool failed = false;
  EdgeList spanning_forest;
  // Component id (the DSU root) per node.
  std::vector<NodeId> component_of;
  // Number of connected components.
  size_t num_components = 0;
  // Boruvka rounds actually executed.
  int rounds_used = 0;

  // Point connectivity query against this result. Out-of-range node ids
  // are simply not connected to anything.
  bool Connected(NodeId u, NodeId v) const {
    if (u >= component_of.size() || v >= component_of.size()) return false;
    return component_of[u] == component_of[v];
  }
};

// The snapshot-facing query: computes the connected components and a
// spanning forest of the sketched graph. The destructive Boruvka
// scratch copy is taken internally; the snapshot is untouched and can
// be queried again, merged, or serialized afterwards.
//
// `num_threads`: 0 picks a small pool automatically (bounded by the
// hardware), 1 forces the sequential path, N uses N threads. Results
// are identical for every value.
ConnectivityResult Connectivity(const GraphSnapshot& snapshot,
                                int num_threads = 0);

// Rvalue form: consumes the snapshot's sketches as the Boruvka scratch
// directly, so querying a temporary (e.g. Connectivity(gz.Snapshot()))
// holds one copy of the sketch state, not two.
ConnectivityResult Connectivity(GraphSnapshot&& snapshot,
                                int num_threads = 0);

// Resolution of num_threads = 0 ("auto"): min(hardware_concurrency, 8),
// at least 1. Exposed so benchmarks can report the pool size.
int ResolveQueryThreads(int num_threads);

// Destructively computes a spanning forest from the given node sketches
// (they are merged in place; pass copies/snapshots). `sketches[i]` must
// be the node sketch of vertex i, all built with identical params.
//
// `first_round`/`num_rounds` restrict Boruvka to a window of sketch
// rounds (default: all of them) so that multi-phase algorithms — e.g.
// the spanning-forest decomposition in algos/ — can give each phase
// fresh, adaptivity-safe rounds. num_rounds < 0 means "through the
// last round". `num_threads` as in Connectivity().
ConnectivityResult BoruvkaConnectivity(std::vector<NodeSketch>* sketches,
                                       int first_round = 0,
                                       int num_rounds = -1,
                                       int num_threads = 1);

// Groups nodes by component id. Helper for callers that want explicit
// component membership lists.
std::vector<std::vector<NodeId>> ComponentsFromLabels(
    const std::vector<NodeId>& component_of);

// Problem 1 of the paper asks for the spanning forest as an
// *insert-only edge stream*; this writes exactly that, reusing the
// binary stream-file format (every record an insertion).
Status WriteSpanningForestStream(const ConnectivityResult& result,
                                 uint64_t num_nodes,
                                 const std::string& path);

}  // namespace gz

#endif  // GZ_CORE_CONNECTIVITY_H_
