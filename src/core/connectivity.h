// Boruvka-over-sketches connectivity computation (paper Figure 9).
//
// Each round queries one fresh subsketch per current component for a cut
// edge, merges the endpoints' components in a DSU, and XOR-sums the
// merged components' sketches (linearity makes the sum a sketch of the
// merged component's cut vector). Rounds use independent subsketches
// because query answers feed back into later merges (adaptivity).
#ifndef GZ_CORE_CONNECTIVITY_H_
#define GZ_CORE_CONNECTIVITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/node_sketch.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

struct ConnectivityResult {
  // True when the sketches could not complete Boruvka within the round
  // budget (probability polynomially small; Section 6.3 observes zero
  // failures in practice).
  bool failed = false;
  EdgeList spanning_forest;
  // Component id (the DSU root) per node.
  std::vector<NodeId> component_of;
  // Number of connected components.
  size_t num_components = 0;
  // Boruvka rounds actually executed.
  int rounds_used = 0;

  // Point connectivity query against this result.
  bool Connected(NodeId u, NodeId v) const {
    return component_of[u] == component_of[v];
  }
};

// Destructively computes a spanning forest from the given node sketches
// (they are merged in place; pass copies/snapshots). `sketches[i]` must
// be the node sketch of vertex i, all built with identical params.
//
// `first_round`/`num_rounds` restrict Boruvka to a window of sketch
// rounds (default: all of them) so that multi-phase algorithms — e.g.
// the spanning-forest decomposition in algos/ — can give each phase
// fresh, adaptivity-safe rounds. num_rounds < 0 means "through the
// last round".
ConnectivityResult BoruvkaConnectivity(std::vector<NodeSketch>* sketches,
                                       int first_round = 0,
                                       int num_rounds = -1);

// Groups nodes by component id. Helper for callers that want explicit
// component membership lists.
std::vector<std::vector<NodeId>> ComponentsFromLabels(
    const std::vector<NodeId>& component_of);

// Problem 1 of the paper asks for the spanning forest as an
// *insert-only edge stream*; this writes exactly that, reusing the
// binary stream-file format (every record an insertion).
Status WriteSpanningForestStream(const ConnectivityResult& result,
                                 uint64_t num_nodes,
                                 const std::string& path);

}  // namespace gz

#endif  // GZ_CORE_CONNECTIVITY_H_
