// Standing queries: the registry + answer-diff engine behind the
// continuous-connectivity surface. A client registers a query —
// connected(u,v)?, component count, or a spanning-forest watch — and a
// driver (QuerySession's watcher thread, or the coordinator calling
// EvaluateStandingQueries between updates) re-evaluates all of them
// whenever the cluster position moves, firing a notification for each
// query whose ANSWER changed since its last notification.
//
// One evaluation runs Boruvka ONCE per position, however many queries
// are registered: every registered answer is derived from the same
// ConnectivityResult, so adding the 16th standing query costs a
// structural diff, not another fold. Diffing is structural — the
// spanning forest is canonicalized (sorted edges) before comparison,
// so two evaluations whose forests merely enumerate the same edges in
// a different order do not notify.
//
// Delivery semantics: a notification fires on a query's FIRST
// evaluation (the subscriber learns the current answer) and then once
// per evaluated position at which the answer differs from the last
// NOTIFIED answer. Positions between evaluations coalesce: if the
// answer flips A -> B -> A entirely between two evaluations, nothing
// fires — the contract is "the latest answer, when it changed", not a
// total history. Every notification carries the (epoch, num_updates)
// position it was evaluated at, and the notifier also receives the
// evaluated snapshot itself, so a subscriber (or a chaos test) can
// re-run the fold at exactly the reported position and check the
// answer bitwise.
//
// Not thread-safe; the owner serializes access (QuerySession guards it
// with the watch mutex, the coordinator is single-driver like all its
// other calls).
#ifndef GZ_CORE_STANDING_QUERY_H_
#define GZ_CORE_STANDING_QUERY_H_

#include <cstdint>
#include <functional>
#include <map>

#include "core/connectivity.h"
#include "core/graph_snapshot.h"
#include "stream/stream_types.h"
#include "util/status.h"

namespace gz {

enum class StandingQueryKind : uint8_t {
  kConnected = 0,       // connected(u, v)?
  kComponentCount = 1,  // number of connected components
  kSpanningForest = 2,  // the spanning forest itself (canonicalized)
};

struct StandingQuerySpec {
  StandingQueryKind kind = StandingQueryKind::kComponentCount;
  // Endpoints of a kConnected query; ignored by the other kinds.
  NodeId u = 0;
  NodeId v = 0;
};

// A query's current answer. Only the field(s) its kind uses are
// meaningful; the others stay default so operator== is a structural
// comparison of exactly what the query observes.
struct StandingQueryAnswer {
  bool connected = false;     // kConnected
  size_t num_components = 0;  // kComponentCount, kSpanningForest
  EdgeList forest;            // kSpanningForest, sorted ascending

  friend bool operator==(const StandingQueryAnswer& a,
                         const StandingQueryAnswer& b) {
    return a.connected == b.connected &&
           a.num_components == b.num_components && a.forest == b.forest;
  }
  friend bool operator!=(const StandingQueryAnswer& a,
                         const StandingQueryAnswer& b) {
    return !(a == b);
  }
};

// Derives one query's answer from a shared ConnectivityResult (the
// one-fold-many-queries contract). Exposed so verifiers can re-derive
// an answer from a fresh fold and compare structurally.
StandingQueryAnswer DeriveStandingAnswer(const StandingQuerySpec& spec,
                                         const ConnectivityResult& result);

struct StandingQueryNotification {
  uint64_t query_id = 0;
  // Per-query notification sequence, 1-based: 1 is the initial answer.
  uint64_t sequence = 0;
  // The position the answer was evaluated at.
  uint64_t epoch = 0;
  uint64_t num_updates = 0;
  StandingQuerySpec spec;
  StandingQueryAnswer answer;
};

// Fired once per changed answer. `snapshot` is the exact snapshot the
// answer was derived from — re-running Connectivity on it reproduces
// the answer bit for bit, which is how subscribers verify a
// notification against a fresh fold at its reported position.
using StandingQueryNotifier =
    std::function<void(const StandingQueryNotification& notification,
                       const GraphSnapshot& snapshot)>;

class StandingQueryRegistry {
 public:
  // Registers a query; the returned id names it in notifications and
  // Remove(). Ids are never reused.
  uint64_t Add(const StandingQuerySpec& spec);
  // Unregisters; false when the id is unknown (already removed).
  bool Remove(uint64_t query_id);
  size_t size() const { return queries_.size(); }

  // True when some registered query has never been evaluated — a
  // driver must evaluate even at an unmoved position so a freshly
  // added query receives its initial answer.
  bool HasUnevaluated() const;

  // Evaluates every registered query against `snapshot` (ONE
  // Connectivity run at `threads`), fires `notifier` for each whose
  // answer changed (always on first evaluation), and records the
  // notified answers. Returns the number of notifications fired, or an
  // error when the sketch query failed (nothing is recorded then — the
  // next evaluation retries from the last notified answers).
  Result<size_t> Evaluate(const GraphSnapshot& snapshot, uint64_t epoch,
                          int threads, const StandingQueryNotifier& notifier);

  // Total notifications fired across all Evaluate calls.
  uint64_t notifications() const { return notifications_; }
  // Evaluations that ran a fold (for observability: one per moved
  // position, not one per query).
  uint64_t evaluations() const { return evaluations_; }

 private:
  struct Entry {
    StandingQuerySpec spec;
    uint64_t sequence = 0;  // Notifications fired for this query.
    StandingQueryAnswer last_notified;
  };

  std::map<uint64_t, Entry> queries_;
  uint64_t next_id_ = 1;
  uint64_t notifications_ = 0;
  uint64_t evaluations_ = 0;
};

}  // namespace gz

#endif  // GZ_CORE_STANDING_QUERY_H_
