#include "core/connectivity.h"

#include <algorithm>

#include "dsu/dsu.h"
#include "stream/stream_file.h"
#include "util/check.h"

namespace gz {

ConnectivityResult BoruvkaConnectivity(std::vector<NodeSketch>* sketches,
                                       int first_round, int num_rounds) {
  GZ_CHECK(sketches != nullptr && !sketches->empty());
  std::vector<NodeSketch>& sk = *sketches;
  const uint64_t num_nodes = sk[0].params().num_nodes;
  GZ_CHECK_MSG(sk.size() == num_nodes,
               "need one node sketch per vertex");
  GZ_CHECK(first_round >= 0 && first_round < sk[0].rounds());
  const int last_round = num_rounds < 0
                             ? sk[0].rounds()
                             : std::min(sk[0].rounds(),
                                        first_round + num_rounds);

  ConnectivityResult result;
  Dsu dsu(num_nodes);
  bool complete = false;

  for (int round = first_round; round < last_round && !complete; ++round) {
    result.rounds_used = round - first_round + 1;
    // Phase 1: sample one cut edge per current component.
    EdgeList candidates;
    bool any_fail = false;
    for (uint64_t i = 0; i < num_nodes; ++i) {
      if (dsu.Find(i) != i) continue;  // Only component representatives.
      const SketchSample sample = sk[i].Query(round);
      switch (sample.kind) {
        case SampleKind::kGood:
          candidates.push_back(IndexToEdge(sample.index, num_nodes));
          break;
        case SampleKind::kZero:
          break;  // Empty cut: this component is finished.
        case SampleKind::kFail:
          any_fail = true;
          break;
      }
    }

    // Phase 2 + 3: merge endpoint components and sum their sketches.
    bool found_edge = false;
    for (const Edge& e : candidates) {
      const size_t ra = dsu.Find(e.u);
      const size_t rb = dsu.Find(e.v);
      if (ra == rb) continue;  // Already merged transitively this round.
      GZ_CHECK(dsu.Union(ra, rb));
      const size_t root = dsu.Find(ra);
      const size_t other = (root == ra) ? rb : ra;
      sk[root].Merge(sk[other]);
      result.spanning_forest.push_back(e);
      found_edge = true;
    }

    if (!found_edge && !any_fail) complete = true;  // All cuts empty.
  }

  result.failed = !complete;
  result.num_components = dsu.num_sets();
  result.component_of.resize(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    result.component_of[i] = static_cast<NodeId>(dsu.Find(i));
  }
  return result;
}

Status WriteSpanningForestStream(const ConnectivityResult& result,
                                 uint64_t num_nodes,
                                 const std::string& path) {
  StreamWriter writer;
  Status s = writer.Open(path, num_nodes);
  if (!s.ok()) return s;
  for (const Edge& e : result.spanning_forest) {
    s = writer.Append({e, UpdateType::kInsert});
    if (!s.ok()) return s;
  }
  return writer.Close();
}

std::vector<std::vector<NodeId>> ComponentsFromLabels(
    const std::vector<NodeId>& component_of) {
  std::vector<std::vector<NodeId>> components;
  std::vector<int64_t> slot(component_of.size(), -1);
  for (NodeId i = 0; i < component_of.size(); ++i) {
    const NodeId root = component_of[i];
    if (slot[root] < 0) {
      slot[root] = static_cast<int64_t>(components.size());
      components.emplace_back();
    }
    components[slot[root]].push_back(i);
  }
  return components;
}

}  // namespace gz
