#include "core/connectivity.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "dsu/dsu.h"
#include "stream/stream_file.h"
#include "util/check.h"

namespace gz {
namespace {

// Work-size floors below which a round's phase runs inline even when a
// pool exists: late Boruvka rounds are tiny and cost less than the pool
// barrier.
constexpr uint64_t kMinParallelSampleRoots = 1024;
constexpr size_t kMinParallelFoldPairs = 16;
constexpr uint64_t kSampleBlockNodes = 1024;

// A minimal fixed-size pool for query-time parallelism. One pool lives
// for the duration of a BoruvkaConnectivity call; each Run() is a
// barriered parallel-for over block indices with dynamic chunking
// (atomic grab), so imbalanced blocks spread across threads. Callers
// must keep distinct blocks data-disjoint; determinism comes from
// writing block results into per-block slots, never from run order.
class QueryThreadPool {
 public:
  explicit QueryThreadPool(int num_workers) {
    workers_.reserve(num_workers);
    for (int i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~QueryThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Runs body(block) for every block in [0, num_blocks), returning once
  // all blocks are done. The calling thread participates.
  void Run(size_t num_blocks, const std::function<void(size_t)>& body) {
    if (workers_.empty() || num_blocks <= 1) {
      for (size_t b = 0; b < num_blocks; ++b) body(b);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      body_ = &body;
      num_blocks_ = num_blocks;
      next_block_.store(0, std::memory_order_relaxed);
      busy_ = static_cast<int>(workers_.size());
      ++epoch_;
    }
    work_cv_.notify_all();
    size_t b;
    while ((b = next_block_.fetch_add(1, std::memory_order_relaxed)) <
           num_blocks) {
      body(b);
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return busy_ == 0; });
    body_ = nullptr;
  }

 private:
  void WorkerLoop() {
    uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(size_t)>* body;
      size_t num_blocks;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        body = body_;
        num_blocks = num_blocks_;
      }
      size_t b;
      while ((b = next_block_.fetch_add(1, std::memory_order_relaxed)) <
             num_blocks) {
        (*body)(b);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--busy_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  const std::function<void(size_t)>* body_ = nullptr;
  std::atomic<size_t> next_block_{0};
  size_t num_blocks_ = 0;
  int busy_ = 0;
  uint64_t epoch_ = 0;
  bool stop_ = false;
};

// Per-block output slot of the sampling phase.
struct SampleBlock {
  EdgeList candidates;
  bool any_fail = false;
};

}  // namespace

int ResolveQueryThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
}

ConnectivityResult Connectivity(const GraphSnapshot& snapshot,
                                int num_threads) {
  GZ_CHECK_MSG(snapshot.valid(), "querying an empty snapshot");
  // The one place the destructive scratch copy is made.
  std::vector<NodeSketch> scratch = snapshot.CopySketches();
  return BoruvkaConnectivity(&scratch, /*first_round=*/0, /*num_rounds=*/-1,
                             ResolveQueryThreads(num_threads));
}

ConnectivityResult Connectivity(GraphSnapshot&& snapshot, int num_threads) {
  GZ_CHECK_MSG(snapshot.valid(), "querying an empty snapshot");
  std::vector<NodeSketch> scratch = snapshot.ReleaseSketches();
  return BoruvkaConnectivity(&scratch, /*first_round=*/0, /*num_rounds=*/-1,
                             ResolveQueryThreads(num_threads));
}

ConnectivityResult BoruvkaConnectivity(std::vector<NodeSketch>* sketches,
                                       int first_round, int num_rounds,
                                       int num_threads) {
  GZ_CHECK(sketches != nullptr && !sketches->empty());
  std::vector<NodeSketch>& sk = *sketches;
  const uint64_t num_nodes = sk[0].params().num_nodes;
  GZ_CHECK_MSG(sk.size() == num_nodes,
               "need one node sketch per vertex");
  GZ_CHECK(first_round >= 0 && first_round < sk[0].rounds());
  const int last_round = num_rounds < 0
                             ? sk[0].rounds()
                             : std::min(sk[0].rounds(),
                                        first_round + num_rounds);

  // Spawn the pool only when a parallel gate can actually fire: below
  // the sampling floor neither phase ever goes parallel, and thread
  // create/join would dominate the whole query on small graphs.
  const int threads = std::max(1, num_threads);
  std::unique_ptr<QueryThreadPool> pool;
  if (threads > 1 && num_nodes >= kMinParallelSampleRoots) {
    pool = std::make_unique<QueryThreadPool>(threads - 1);
  }

  ConnectivityResult result;
  Dsu dsu(num_nodes);
  // root_of freezes each node's representative at the top of the round;
  // the parallel phases read it instead of calling Dsu::Find, whose
  // path compression is not safe under concurrency.
  std::vector<NodeId> root_of(num_nodes);
  std::vector<int64_t> group_slot(num_nodes, -1);
  const size_t num_blocks =
      (num_nodes + kSampleBlockNodes - 1) / kSampleBlockNodes;
  std::vector<SampleBlock> blocks(num_blocks);
  bool complete = false;

  for (int round = first_round; round < last_round && !complete; ++round) {
    result.rounds_used = round - first_round + 1;
    for (uint64_t i = 0; i < num_nodes; ++i) {
      root_of[i] = static_cast<NodeId>(dsu.Find(i));
    }
    const uint64_t live_roots = dsu.num_sets();

    // Phase 1: sample one candidate cut edge per live component, in
    // parallel over contiguous node-id blocks. Per-block result slots
    // keep the gathered candidate order equal to the sequential
    // ascending-id order regardless of which thread ran which block.
    auto sample_block = [&](size_t b) {
      SampleBlock& out = blocks[b];
      out.candidates.clear();
      out.any_fail = false;
      const uint64_t begin = b * kSampleBlockNodes;
      const uint64_t end = std::min(begin + kSampleBlockNodes, num_nodes);
      for (uint64_t i = begin; i < end; ++i) {
        if (root_of[i] != i) continue;  // Only component representatives.
        const SketchSample sample = sk[i].Query(round);
        switch (sample.kind) {
          case SampleKind::kGood:
            out.candidates.push_back(IndexToEdge(sample.index, num_nodes));
            break;
          case SampleKind::kZero:
            break;  // Empty cut: this component is finished.
          case SampleKind::kFail:
            out.any_fail = true;
            break;
        }
      }
    };
    if (pool != nullptr && live_roots >= kMinParallelSampleRoots) {
      pool->Run(num_blocks, sample_block);
    } else {
      for (size_t b = 0; b < num_blocks; ++b) sample_block(b);
    }

    // Phase 2 (sequential): drive the DSU over the candidates in
    // ascending-representative order, recording forest edges. No sketch
    // is touched here, so the merge structure this induces is identical
    // for every thread count.
    bool any_fail = false;
    bool found_edge = false;
    for (const SampleBlock& block : blocks) {
      any_fail |= block.any_fail;
      for (const Edge& e : block.candidates) {
        const size_t ra = dsu.Find(e.u);
        const size_t rb = dsu.Find(e.v);
        if (ra == rb) continue;  // Already merged transitively this round.
        GZ_CHECK(dsu.Union(ra, rb));
        result.spanning_forest.push_back(e);
        found_edge = true;
      }
    }
    if (!found_edge && !any_fail) {
      complete = true;  // All cuts empty.
      break;
    }
    // After the window's final round nothing is queried again, so the
    // fold below would be dead work.
    if (round + 1 >= last_round) continue;

    // Phase 3: XOR-fold each merged component's sketches into its new
    // representative, as a pairwise tree reduction levelled ACROSS all
    // groups: every level folds disjoint (dst, src) pairs — dst keeps
    // the running sum, src is dead afterwards — halving each group's
    // survivor list until only its root remains. Parallelism therefore
    // spans components AND the inside of one giant component: a
    // star-like graph whose single group used to fold sequentially now
    // spreads n/2 merges per level over the pool, log2(n) levels deep,
    // with the same n-1 total merges. Every pair's sketches are
    // disjoint within a level, and the XOR sum is bitwise
    // order-independent, so the folded state is identical for any
    // thread count and any tree shape. Rounds at or before `round` are
    // never queried again and are skipped.
    struct FoldGroup {
      // nodes[0] is the new representative; the rest fold into it.
      std::vector<NodeId> nodes;
    };
    std::vector<FoldGroup> groups;
    for (uint64_t i = 0; i < num_nodes; ++i) {
      if (root_of[i] != i) continue;  // This round's roots only.
      const NodeId new_root = static_cast<NodeId>(dsu.Find(i));
      if (new_root == i) continue;    // Still its own representative.
      if (group_slot[new_root] < 0) {
        group_slot[new_root] = static_cast<int64_t>(groups.size());
        groups.push_back({{new_root}});
      }
      groups[group_slot[new_root]].nodes.push_back(static_cast<NodeId>(i));
    }
    std::vector<std::pair<NodeId, NodeId>> fold_pairs;
    auto fold_pair = [&](size_t p) {
      sk[fold_pairs[p].first].MergeRounds(sk[fold_pairs[p].second],
                                          round + 1);
    };
    for (;;) {
      fold_pairs.clear();
      for (FoldGroup& g : groups) {
        for (size_t k = 0; 2 * k + 1 < g.nodes.size(); ++k) {
          fold_pairs.push_back({g.nodes[2 * k], g.nodes[2 * k + 1]});
        }
      }
      if (fold_pairs.empty()) break;
      if (pool != nullptr && fold_pairs.size() >= kMinParallelFoldPairs) {
        pool->Run(fold_pairs.size(), fold_pair);
      } else {
        for (size_t p = 0; p < fold_pairs.size(); ++p) fold_pair(p);
      }
      for (FoldGroup& g : groups) {
        // Survivors are the even indices; nodes[0] (the root) stays 0.
        size_t keep = 0;
        for (size_t k = 0; k < g.nodes.size(); k += 2) {
          g.nodes[keep++] = g.nodes[k];
        }
        g.nodes.resize(keep);
      }
    }
    for (const FoldGroup& g : groups) group_slot[g.nodes[0]] = -1;
  }

  result.failed = !complete;
  result.num_components = dsu.num_sets();
  result.component_of.resize(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    result.component_of[i] = static_cast<NodeId>(dsu.Find(i));
  }
  return result;
}

Status WriteSpanningForestStream(const ConnectivityResult& result,
                                 uint64_t num_nodes,
                                 const std::string& path) {
  StreamWriter writer;
  Status s = writer.Open(path, num_nodes);
  if (!s.ok()) return s;
  for (const Edge& e : result.spanning_forest) {
    s = writer.Append({e, UpdateType::kInsert});
    if (!s.ok()) return s;
  }
  return writer.Close();
}

std::vector<std::vector<NodeId>> ComponentsFromLabels(
    const std::vector<NodeId>& component_of) {
  std::vector<std::vector<NodeId>> components;
  std::vector<int64_t> slot(component_of.size(), -1);
  for (NodeId i = 0; i < component_of.size(); ++i) {
    const NodeId root = component_of[i];
    if (slot[root] < 0) {
      slot[root] = static_cast<int64_t>(components.size());
      components.emplace_back();
    }
    components[slot[root]].push_back(i);
  }
  return components;
}

}  // namespace gz
