#include "core/sketch_store.h"

#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"

namespace gz {

// ---------------- InMemorySketchStore ---------------------------------

InMemorySketchStore::InMemorySketchStore(const NodeSketchParams& params)
    : SketchStore(params) {
  sketches_.reserve(params.num_nodes);
  for (uint64_t i = 0; i < params.num_nodes; ++i) {
    sketches_.emplace_back(params);
  }
  // Normalize params_ (rounds may have been auto-filled).
  params_ = sketches_.front().params();
  locks_ = std::make_unique<std::mutex[]>(params.num_nodes);
}

void InMemorySketchStore::MergeDelta(NodeId node, const NodeSketch& delta) {
  GZ_CHECK(node < params_.num_nodes);
  std::lock_guard<std::mutex> lock(locks_[node]);
  sketches_[node].Merge(delta);
}

void InMemorySketchStore::Load(NodeId node, NodeSketch* out) {
  GZ_CHECK(node < params_.num_nodes);
  std::lock_guard<std::mutex> lock(locks_[node]);
  *out = sketches_[node];
}

void InMemorySketchStore::Store(NodeId node, const NodeSketch& sketch) {
  GZ_CHECK(node < params_.num_nodes);
  GZ_CHECK(sketch.params() == params_);
  std::lock_guard<std::mutex> lock(locks_[node]);
  sketches_[node] = sketch;
}

size_t InMemorySketchStore::RamByteSize() const {
  size_t total = sizeof(*this);
  for (const NodeSketch& s : sketches_) total += s.ByteSize();
  total += params_.num_nodes * sizeof(std::mutex);
  return total;
}

// ---------------- OnDiskSketchStore ------------------------------------

OnDiskSketchStore::OnDiskSketchStore(const NodeSketchParams& params,
                                     std::string path)
    : SketchStore(params), path_(std::move(path)) {
  // Normalize params (auto rounds) by building one prototype sketch.
  NodeSketch prototype(params_);
  params_ = prototype.params();
  record_bytes_ = prototype.SerializedSize();
  locks_ = std::make_unique<std::mutex[]>(params_.num_nodes);
}

OnDiskSketchStore::~OnDiskSketchStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status OnDiskSketchStore::Init() {
  if (fd_ >= 0) return Status::FailedPrecondition("already initialized");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create sketch store file: " + path_);
  }
  // All-zero bytes deserialize to empty sketches, so plain ftruncate
  // initializes every node's region.
  const off_t total =
      static_cast<off_t>(record_bytes_ * params_.num_nodes);
  if (::ftruncate(fd_, total) != 0) {
    return Status::IoError("cannot preallocate sketch store file");
  }
  return Status::Ok();
}

void OnDiskSketchStore::MergeDelta(NodeId node, const NodeSketch& delta) {
  GZ_CHECK(node < params_.num_nodes);
  GZ_CHECK_MSG(fd_ >= 0, "Init() not called");
  // Serialize the delta outside the lock; CubeSketch serialization is
  // XOR-linear, so merging is a bytewise XOR of the two blobs.
  std::vector<uint8_t> delta_buf(record_bytes_);
  delta.SerializeTo(delta_buf.data());

  const off_t offset = static_cast<off_t>(record_bytes_) * node;
  std::lock_guard<std::mutex> lock(locks_[node]);
  std::vector<uint8_t> disk_buf(record_bytes_);
  ssize_t got = ::pread(fd_, disk_buf.data(), record_bytes_, offset);
  GZ_CHECK_MSG(got == static_cast<ssize_t>(record_bytes_),
               "sketch store pread");
  bytes_read_ += record_bytes_;

  // XOR word-wise (the blob is a multiple of 4 bytes by construction).
  uint8_t* dst = disk_buf.data();
  const uint8_t* src = delta_buf.data();
  size_t i = 0;
  for (; i + 8 <= record_bytes_; i += 8) {
    uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < record_bytes_; ++i) dst[i] ^= src[i];

  ssize_t wrote = ::pwrite(fd_, disk_buf.data(), record_bytes_, offset);
  GZ_CHECK_MSG(wrote == static_cast<ssize_t>(record_bytes_),
               "sketch store pwrite");
  bytes_written_ += record_bytes_;
}

void OnDiskSketchStore::Load(NodeId node, NodeSketch* out) {
  GZ_CHECK(node < params_.num_nodes);
  GZ_CHECK_MSG(fd_ >= 0, "Init() not called");
  GZ_CHECK(out->SerializedSize() == record_bytes_);
  std::vector<uint8_t> buf(record_bytes_);
  const off_t offset = static_cast<off_t>(record_bytes_) * node;
  {
    std::lock_guard<std::mutex> lock(locks_[node]);
    ssize_t got = ::pread(fd_, buf.data(), record_bytes_, offset);
    GZ_CHECK_MSG(got == static_cast<ssize_t>(record_bytes_),
                 "sketch store pread");
  }
  bytes_read_ += record_bytes_;
  out->DeserializeFrom(buf.data());
}

void OnDiskSketchStore::Store(NodeId node, const NodeSketch& sketch) {
  GZ_CHECK(node < params_.num_nodes);
  GZ_CHECK_MSG(fd_ >= 0, "Init() not called");
  GZ_CHECK(sketch.SerializedSize() == record_bytes_);
  std::vector<uint8_t> buf(record_bytes_);
  sketch.SerializeTo(buf.data());
  const off_t offset = static_cast<off_t>(record_bytes_) * node;
  std::lock_guard<std::mutex> lock(locks_[node]);
  ssize_t wrote = ::pwrite(fd_, buf.data(), record_bytes_, offset);
  GZ_CHECK_MSG(wrote == static_cast<ssize_t>(record_bytes_),
               "sketch store pwrite");
  bytes_written_ += record_bytes_;
}

size_t OnDiskSketchStore::RamByteSize() const {
  // Only metadata lives in RAM; sketches are on disk.
  return sizeof(*this) + params_.num_nodes * sizeof(std::mutex);
}

size_t OnDiskSketchStore::DiskByteSize() const {
  return record_bytes_ * params_.num_nodes;
}

}  // namespace gz
