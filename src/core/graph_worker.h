// Graph Workers (paper Section 5.1): a pool of threads that pop
// per-node pooled batches from the work queue, sketch each batch into a
// private delta NodeSketch, and XOR-merge the delta into the store.
// Sketching the batch needs no lock (linearity); only the final merge
// synchronizes, which is the paper's small-critical-section trick.
//
// Each worker keeps one reusable delta sketch for its whole life and
// returns every consumed slab to the BatchPool, so the apply path does
// no heap allocation in steady state.
#ifndef GZ_CORE_GRAPH_WORKER_H_
#define GZ_CORE_GRAPH_WORKER_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "core/sketch_store.h"

namespace gz {

class WorkerPool {
 public:
  // `queue`, `batch_pool` and `store` must outlive the pool.
  WorkerPool(WorkQueue* queue, BatchPool* batch_pool, SketchStore* store,
             int num_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Start();

  // Blocks until the queue is empty and no worker is mid-batch. The
  // producer must have stopped pushing (e.g. after ForceFlush) for this
  // to be meaningful.
  void Drain();

  // Closes the queue and joins all workers. Called automatically by the
  // destructor.
  void Stop();

  uint64_t updates_applied() const { return updates_applied_.load(); }
  uint64_t batches_applied() const { return batches_applied_.load(); }

 private:
  void WorkerLoop();

  WorkQueue* queue_;
  BatchPool* batch_pool_;
  SketchStore* store_;
  int num_workers_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> batches_applied_{0};
  bool started_ = false;
};

}  // namespace gz

#endif  // GZ_CORE_GRAPH_WORKER_H_
