#include "core/standing_query.h"

#include <algorithm>

namespace gz {

StandingQueryAnswer DeriveStandingAnswer(const StandingQuerySpec& spec,
                                         const ConnectivityResult& result) {
  StandingQueryAnswer answer;
  switch (spec.kind) {
    case StandingQueryKind::kConnected:
      answer.connected = result.Connected(spec.u, spec.v);
      break;
    case StandingQueryKind::kComponentCount:
      answer.num_components = result.num_components;
      break;
    case StandingQueryKind::kSpanningForest:
      // Canonical order: Boruvka's forest is deterministic for a given
      // snapshot, but the diff must not depend on enumeration order —
      // two folds listing the same edges differently are the same
      // answer.
      answer.forest = result.spanning_forest;
      std::sort(answer.forest.begin(), answer.forest.end());
      answer.num_components = result.num_components;
      break;
  }
  return answer;
}

uint64_t StandingQueryRegistry::Add(const StandingQuerySpec& spec) {
  const uint64_t id = next_id_++;
  Entry entry;
  entry.spec = spec;
  queries_.emplace(id, std::move(entry));
  return id;
}

bool StandingQueryRegistry::Remove(uint64_t query_id) {
  return queries_.erase(query_id) > 0;
}

bool StandingQueryRegistry::HasUnevaluated() const {
  for (const auto& [id, entry] : queries_) {
    (void)id;
    if (entry.sequence == 0) return true;
  }
  return false;
}

Result<size_t> StandingQueryRegistry::Evaluate(
    const GraphSnapshot& snapshot, uint64_t epoch, int threads,
    const StandingQueryNotifier& notifier) {
  if (queries_.empty()) return size_t{0};
  // One fold serves every registered query at this position.
  const ConnectivityResult result = Connectivity(snapshot, threads);
  if (result.failed) {
    return Status::Internal(
        "standing-query evaluation: sketch connectivity failed");
  }
  ++evaluations_;
  size_t fired = 0;
  for (auto& [id, entry] : queries_) {
    StandingQueryAnswer answer = DeriveStandingAnswer(entry.spec, result);
    const bool changed =
        entry.sequence == 0 || answer != entry.last_notified;
    if (!changed) continue;
    ++entry.sequence;
    entry.last_notified = std::move(answer);
    ++notifications_;
    ++fired;
    if (notifier != nullptr) {
      StandingQueryNotification notification;
      notification.query_id = id;
      notification.sequence = entry.sequence;
      notification.epoch = epoch;
      notification.num_updates = snapshot.num_updates();
      notification.spec = entry.spec;
      notification.answer = entry.last_notified;
      notifier(notification, snapshot);
    }
  }
  return fired;
}

}  // namespace gz
