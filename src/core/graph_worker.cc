#include "core/graph_worker.h"

#include <chrono>

#include "util/check.h"

namespace gz {

WorkerPool::WorkerPool(WorkQueue* queue, BatchPool* batch_pool,
                       SketchStore* store, int num_workers)
    : queue_(queue), batch_pool_(batch_pool), store_(store),
      num_workers_(num_workers) {
  GZ_CHECK(queue_ != nullptr && batch_pool_ != nullptr && store_ != nullptr);
  GZ_CHECK(num_workers_ >= 1);
}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Start() {
  GZ_CHECK_MSG(!started_, "pool already started");
  started_ = true;
  threads_.reserve(num_workers_);
  for (int i = 0; i < num_workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void WorkerPool::WorkerLoop() {
  // Reusable delta sketch: cleared per batch, so the allocation cost is
  // paid once per worker, not per batch.
  NodeSketch delta(store_->params());
  UpdateBatch* batch = nullptr;
  while ((batch = queue_->Pop()) != nullptr) {
    delta.Clear();
    delta.UpdateBatch(batch->edge_indices(), batch->count);
    store_->MergeDelta(batch->node, delta);
    updates_applied_.fetch_add(batch->count, std::memory_order_relaxed);
    batches_applied_.fetch_add(1, std::memory_order_relaxed);
    batch_pool_->Release(batch);
    queue_->MarkDone();
  }
}

void WorkerPool::Drain() {
  while (queue_->InFlight() > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void WorkerPool::Stop() {
  if (!started_) return;
  queue_->Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  started_ = false;
}

}  // namespace gz
