// Drives a GraphZeppelin instance from a binary stream file, with
// periodic progress callbacks — the glue between stored streams and the
// system that tools, benchmarks and long-running jobs share.
#ifndef GZ_CORE_STREAM_INGESTOR_H_
#define GZ_CORE_STREAM_INGESTOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "core/graph_zeppelin.h"
#include "util/status.h"

namespace gz {

struct IngestProgress {
  uint64_t consumed = 0;  // Updates ingested so far.
  uint64_t total = 0;     // Updates in the stream.
  double seconds = 0.0;   // Elapsed wall time.
};

// Called every `callback_every` updates and once at completion.
using IngestProgressCallback = std::function<void(const IngestProgress&)>;

// Streams `path` into `gz` (which must be initialized with at least the
// file's node count). Returns the number of updates ingested. The final
// flush is included in the reported time.
Result<uint64_t> IngestStreamFile(GraphZeppelin* gz, const std::string& path,
                                  uint64_t callback_every = 0,
                                  IngestProgressCallback callback = nullptr);

}  // namespace gz

#endif  // GZ_CORE_STREAM_INGESTOR_H_
