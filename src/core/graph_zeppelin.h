// GraphZeppelin: the paper's streaming connected-components system
// (Section 5). Wires together the buffering system (leaf-only gutters
// or on-disk gutter tree), the work queue, the Graph Worker pool, and
// the sketch store (RAM or SSD), and answers connectivity queries by
// running Boruvka's algorithm over snapshot sketches.
//
// User-facing API mirrors the paper: Update() (edge_update) ingests one
// stream element; Snapshot() flushes buffers and captures the sketch
// state as an immutable GraphSnapshot, the query surface every
// downstream consumer (Connectivity, forest decomposition, sharded
// aggregation, checkpointing) operates on. Queries may be issued
// mid-stream; ingestion can continue afterwards.
#ifndef GZ_CORE_GRAPH_ZEPPELIN_H_
#define GZ_CORE_GRAPH_ZEPPELIN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "buffer/guttering_system.h"
#include "buffer/update_batch.h"
#include "buffer/work_queue.h"
#include "core/connectivity.h"
#include "core/graph_snapshot.h"
#include "core/graph_worker.h"
#include "core/sketch_store.h"
#include "stream/stream_types.h"
#include "util/status.h"
#include "workloads/count_min.h"

namespace gz {

struct GraphZeppelinConfig {
  uint64_t num_nodes = 0;  // Upper bound U on the vertex count.
  uint64_t seed = 42;

  // Sketch geometry. cols = 7 matches delta = 1/100; rounds = 0 picks
  // ceil(log_{3/2} V) automatically.
  int cols = 7;
  int rounds = 0;

  // Ingestion parallelism (Graph Workers).
  int num_workers = 2;

  enum class Buffering { kLeafOnly, kGutterTree };
  Buffering buffering = Buffering::kLeafOnly;

  enum class Storage { kRam, kDisk };
  Storage storage = Storage::kRam;

  // Leaf gutter capacity as a fraction f of the node-sketch size
  // (Figure 15's knob). Applies to both buffering structures.
  double gutter_fraction = 0.5;

  // Nodes per leaf gutter (Section 4.1 node groups; 1 = paper's
  // measured best for in-RAM gutters, larger for block-granular disks).
  uint64_t nodes_per_gutter_group = 1;

  // Directory for the gutter tree and on-disk sketch store files.
  std::string disk_dir = "/tmp";

  // Disambiguates backing-file names when several instances share a
  // seed in one process (e.g. shards of a ShardedGraphZeppelin).
  std::string instance_tag;

  // Gutter tree geometry (paper: 8 MB buffers, fan-out 512; defaults
  // here are scaled to this environment but configurable back up).
  size_t gutter_tree_buffer_bytes = 1 << 22;
  size_t gutter_tree_fanout = 64;

  // Query-time parallelism for Boruvka (0 = auto-size a small pool,
  // 1 = sequential). Results are identical for every value.
  int query_threads = 0;

  // Heavy-hitter side sketch (workloads/count_min.h). 0 disables
  // tracking entirely (no memory, no per-update work). When > 0, every
  // Update() also feeds a turnstile count-min pair (edge
  // multiplicities + degrees) hooked on the flat update span BEFORE
  // the gutters erase the insert/delete sign. Width must be a power of
  // two; the sketch seeds from `seed`, so same-seed shards fold.
  uint32_t heavy_hitter_width = 0;
  uint32_t heavy_hitter_depth = 4;
  uint32_t heavy_hitter_candidates = 8192;
};

class GraphZeppelin {
 public:
  explicit GraphZeppelin(const GraphZeppelinConfig& config);
  ~GraphZeppelin();
  GraphZeppelin(const GraphZeppelin&) = delete;
  GraphZeppelin& operator=(const GraphZeppelin&) = delete;

  // Allocates sketches, buffering and workers. Must be called once
  // before the first Update().
  Status Init();

  // Ingests one stream update ((u, v), ±1). Inserts and deletions are
  // both XOR toggles of the edge's coordinate. Updates are batched at
  // this API boundary: they accumulate in a small span buffer that is
  // handed to the buffering system in bulk, so the gutters see spans
  // rather than single edges.
  void Update(const GraphUpdate& update);

  // Bulk ingestion: the preferred path for stream drivers that already
  // hold a span of updates. Equivalent to calling Update() per element
  // but skips the API-boundary copy and per-update dispatch.
  void Update(const GraphUpdate* updates, size_t count);

  // Forces all buffered updates through the workers and blocks until
  // every sketch is up to date (paper cleanup()). Implied by
  // ListSpanningForest(); exposed so benchmarks can separate ingestion
  // time from query time.
  void Flush();

  // Flushes all buffered updates and computes the connected components
  // from a snapshot (equivalent to Connectivity(Snapshot())). Ingestion
  // may continue afterwards.
  ConnectivityResult ListSpanningForest();

  // Flushes and captures the sketch state as an immutable GraphSnapshot
  // (move-based: the sketches are loaded once and handed to the
  // snapshot, never re-copied). The snapshot is the system's query
  // surface — every query algorithm, the sharded coordinator's
  // aggregation, and checkpointing consume it; linearity makes
  // snapshots from same-seed instances XOR-mergeable.
  GraphSnapshot Snapshot();

  // Streaming form of Snapshot().Serialize(): flushes, then writes the
  // serialized snapshot through `write` with one node record in flight
  // — a shard streams its snapshot straight into a socket frame this
  // way, so even an out-of-core sketch store never materializes the
  // snapshot. The total byte count is GraphSnapshot::SerializedSizeFor
  // (sketch_params()), known before the first call.
  Status WriteSnapshotTo(
      const std::function<Status(const void* data, size_t size)>& write);

  // Coordinator-side fold: flushes, then XOR-merges this instance's
  // sketch state into `snapshot` node by node, materializing only one
  // scratch sketch (not a second full snapshot). InvalidArgument if the
  // snapshot's params don't match this instance.
  Status MergeSnapshotInto(GraphSnapshot* snapshot);

  // --- Elastic-migration primitives ---------------------------------------
  // Streams the serialized node-range delta [lo, hi) of this instance's
  // current state through `write` (flushes first; one record in flight)
  // — how a shard answers a MIGRATE_EXTRACT request straight into a
  // socket frame. The range comes off the wire, so a bad one is an
  // InvalidArgument, not a check failure.
  Status WriteNodeRangeTo(
      uint64_t lo, uint64_t hi,
      const std::function<Status(const void* data, size_t size)>& write);

  // XOR-folds a serialized node-range delta into this instance's sketch
  // store (flushes first so the fold lands on a consistent state). The
  // same call installs migrated state on a successor and cancels it on
  // the source — XORing a shard's own extracted bytes back into it
  // zeroes that range, which is how linearity expresses "move" without
  // a destructive (and replay-order-sensitive) clear operation.
  // num_updates_ingested() is never affected: stream positions stay
  // with the shard that ingested the updates.
  Status MergeSerializedNodeRange(const uint8_t* data, size_t size);

  // Overwrites this instance's sketch state with `snapshot` (e.g. one
  // received from a peer or loaded from a file) and adopts its update
  // count. Params must match; fails with InvalidArgument otherwise.
  Status LoadSnapshot(const GraphSnapshot& snapshot);

  // --- Checkpointing -----------------------------------------------------
  // Thin wrappers over snapshot serialization: SaveCheckpoint is
  // Snapshot().SaveToFile(path) — buffered updates are flushed first,
  // so a restore resumes exactly here — and LoadCheckpoint is
  // GraphSnapshot::LoadFromFile + LoadSnapshot. `offset` skips a
  // caller-owned file prefix (e.g. a shard checkpoint's epoch header)
  // before the snapshot stream.
  Status SaveCheckpoint(const std::string& path);
  Status LoadCheckpoint(const std::string& path, size_t offset = 0);

  // Overwrites the ingested-update count without touching sketch
  // state. Replication repair needs this split: an anti-entropy pass
  // fixes a replica's content with XOR deltas (which carry no counts),
  // then asserts the logical position the repaired content represents.
  void SetUpdatesIngested(uint64_t count) { num_updates_ = count; }

  // ----- Heavy hitters ---------------------------------------------------
  // The side count-min sketch, or nullptr when heavy_hitter_width == 0.
  // Valid after Init(); reading it mid-stream is safe (updates land on
  // the caller's thread at the API boundary, before the gutters).
  const HeavyHitterSketch* heavy_hitters() const { return hh_.get(); }

  // ----- Introspection ---------------------------------------------------
  uint64_t num_updates_ingested() const { return num_updates_; }
  const NodeSketchParams& sketch_params() const;
  // Bytes of one node sketch (drives gutter sizing).
  size_t node_sketch_bytes() const { return node_sketch_bytes_; }
  size_t RamByteSize() const;
  size_t DiskByteSize() const;

  const GraphZeppelinConfig& config() const { return config_; }

 private:
  // Updates buffered at the API boundary before a bulk hand-off to the
  // gutters (GutteringSystem::InsertBatch).
  static constexpr size_t kIngestSpanUpdates = 1024;

  // Hands the API-boundary span buffer to the gutters.
  void DrainIngestSpan();

  GraphZeppelinConfig config_;
  size_t node_sketch_bytes_ = 0;
  uint64_t num_updates_ = 0;
  std::string gutter_tree_path_;
  std::string sketch_store_path_;
  std::vector<GraphUpdate> ingest_span_;  // Reserved once in Init().
  std::unique_ptr<HeavyHitterSketch> hh_;  // Null when disabled.

  // Declaration order doubles as reverse destruction order: the worker
  // pool must die before the queue/store it references, and everything
  // holding slabs (gutters, workers) before the batch pool.
  std::unique_ptr<WorkQueue> queue_;
  std::unique_ptr<BatchPool> batch_pool_;
  std::unique_ptr<SketchStore> store_;
  std::unique_ptr<GutteringSystem> gutters_;
  std::unique_ptr<WorkerPool> pool_;
  bool initialized_ = false;
};

}  // namespace gz

#endif  // GZ_CORE_GRAPH_ZEPPELIN_H_
