#include "core/graph_zeppelin.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include <unistd.h>

#include "buffer/gutter_tree.h"
#include "buffer/leaf_gutters.h"
#include "util/check.h"

namespace gz {
namespace {

// Backing-file names combine seed, instance tag and PID so two
// processes sharing one disk_dir cannot clobber each other, plus a
// process-wide counter so two same-seed instances in one process (e.g.
// untagged shards, or a test creating twins) cannot either.
std::string UniquePath(const std::string& dir, const char* stem,
                       uint64_t seed, const std::string& tag) {
  static std::atomic<uint64_t> instance_counter{0};
  std::string path = dir + "/" + stem + "_p" + std::to_string(::getpid()) +
                     "_s" + std::to_string(seed);
  if (!tag.empty()) path += "_" + tag;
  path += "_i" + std::to_string(instance_counter.fetch_add(1));
  return path + ".bin";
}

}  // namespace

GraphZeppelin::GraphZeppelin(const GraphZeppelinConfig& config)
    : config_(config) {
  GZ_CHECK_MSG(config_.num_nodes >= 2, "need at least two nodes");
  GZ_CHECK(config_.num_workers >= 1);
  GZ_CHECK(config_.gutter_fraction > 0.0);
}

GraphZeppelin::~GraphZeppelin() {
  if (pool_ != nullptr) pool_->Stop();
  // Remove backing files; they are per-instance scratch state.
  if (!gutter_tree_path_.empty()) ::unlink(gutter_tree_path_.c_str());
  if (!sketch_store_path_.empty()) ::unlink(sketch_store_path_.c_str());
}

Status GraphZeppelin::Init() {
  if (initialized_) return Status::FailedPrecondition("already initialized");

  NodeSketchParams sp;
  sp.num_nodes = config_.num_nodes;
  sp.seed = config_.seed;
  sp.cols = config_.cols;
  sp.rounds = config_.rounds;

  // Sketch store.
  if (config_.storage == GraphZeppelinConfig::Storage::kRam) {
    store_ = std::make_unique<InMemorySketchStore>(sp);
  } else {
    sketch_store_path_ = UniquePath(config_.disk_dir, "gz_sketches",
                                    config_.seed, config_.instance_tag);
    auto disk_store =
        std::make_unique<OnDiskSketchStore>(sp, sketch_store_path_);
    Status s = disk_store->Init();
    if (!s.ok()) return s;
    store_ = std::move(disk_store);
  }
  {
    NodeSketch prototype(store_->params());
    node_sketch_bytes_ = prototype.ByteSize();
  }

  // Work queue: 8 batches per worker, as in the paper.
  queue_ = std::make_unique<WorkQueue>(
      static_cast<size_t>(8) * config_.num_workers);

  // Buffering system. Gutter capacity = f * sketch_bytes / 8B-per-update.
  const size_t gutter_updates = std::max<size_t>(
      1, static_cast<size_t>(config_.gutter_fraction *
                             static_cast<double>(node_sketch_bytes_)) /
             sizeof(uint64_t));
  // One slab size serves the whole pipeline: every emitted batch fits.
  batch_pool_ = std::make_unique<BatchPool>(
      static_cast<uint32_t>(gutter_updates));
  if (config_.buffering == GraphZeppelinConfig::Buffering::kLeafOnly) {
    LeafGuttersParams lp;
    lp.num_nodes = config_.num_nodes;
    lp.gutter_capacity = gutter_updates;
    lp.nodes_per_group = config_.nodes_per_gutter_group;
    gutters_ = std::make_unique<LeafGutters>(lp, batch_pool_.get(),
                                             queue_.get());
  } else {
    gutter_tree_path_ = UniquePath(config_.disk_dir, "gz_gutter_tree",
                                   config_.seed, config_.instance_tag);
    GutterTreeParams tp;
    tp.num_nodes = config_.num_nodes;
    tp.file_path = gutter_tree_path_;
    tp.buffer_bytes = config_.gutter_tree_buffer_bytes;
    tp.fanout = config_.gutter_tree_fanout;
    tp.leaf_gutter_updates = gutter_updates;
    tp.nodes_per_group = config_.nodes_per_gutter_group;
    auto tree = std::make_unique<GutterTree>(tp, batch_pool_.get(),
                                             queue_.get());
    Status s = tree->Init();
    if (!s.ok()) return s;
    gutters_ = std::move(tree);
  }

  // Heavy-hitter side sketch: hooked at the API boundary, so it sees
  // the signed updates the gutters are about to erase the sign of.
  if (config_.heavy_hitter_width > 0) {
    HeavyHitterParams hp;
    hp.num_nodes = config_.num_nodes;
    hp.seed = config_.seed;
    hp.width = config_.heavy_hitter_width;
    hp.depth = config_.heavy_hitter_depth;
    hp.candidates = config_.heavy_hitter_candidates;
    hh_ = std::make_unique<HeavyHitterSketch>(hp);
  }

  ingest_span_.reserve(kIngestSpanUpdates);
  pool_ = std::make_unique<WorkerPool>(queue_.get(), batch_pool_.get(),
                                       store_.get(), config_.num_workers);
  pool_->Start();
  initialized_ = true;
  return Status::Ok();
}

void GraphZeppelin::DrainIngestSpan() {
  if (ingest_span_.empty()) return;
  // Both endpoints' characteristic vectors toggle the same coordinate
  // (paper Figure 8): InsertBatch inserts each edge's index twice.
  gutters_->InsertBatch(ingest_span_.data(), ingest_span_.size());
  ingest_span_.clear();  // Keeps capacity: no realloc on refill.
}

void GraphZeppelin::Update(const GraphUpdate& update) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  // Fail fast at the API boundary: buffering would otherwise defer the
  // violation to an arbitrary later drain. Both halves are checked —
  // GraphUpdate is an aggregate, so a caller can bypass Edge's
  // normalizing constructor.
  GZ_CHECK_MSG(update.edge.u < update.edge.v &&
                   update.edge.v < config_.num_nodes,
               "u < v && v < num_nodes");
  if (hh_ != nullptr) hh_->Update(update);
  ingest_span_.push_back(update);
  ++num_updates_;
  if (ingest_span_.size() >= kIngestSpanUpdates) DrainIngestSpan();
}

void GraphZeppelin::Update(const GraphUpdate* updates, size_t count) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  if (hh_ != nullptr) hh_->Update(updates, count);
  DrainIngestSpan();  // Preserve stream order with singly fed updates.
  gutters_->InsertBatch(updates, count);
  num_updates_ += count;
}

void GraphZeppelin::Flush() {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  DrainIngestSpan();
  gutters_->ForceFlush();
  pool_->Drain();
}

GraphSnapshot GraphZeppelin::Snapshot() {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  // cleanup(): force updates out of buffers and wait for the workers,
  // so the capture is a consistent stream position.
  Flush();
  std::vector<NodeSketch> sketches;
  sketches.reserve(config_.num_nodes);
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    sketches.emplace_back(store_->params());
    store_->Load(i, &sketches.back());
  }
  return GraphSnapshot(std::move(sketches), num_updates_);
}

Status GraphZeppelin::WriteSnapshotTo(
    const std::function<Status(const void* data, size_t size)>& write) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  Flush();
  NodeSketch scratch(store_->params());
  return GraphSnapshot::SaveToSink(
      write, store_->params(), num_updates_,
      [this, &scratch](NodeId i) -> const NodeSketch& {
        store_->Load(i, &scratch);
        return scratch;
      });
}

Status GraphZeppelin::MergeSnapshotInto(GraphSnapshot* snapshot) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  GZ_CHECK(snapshot != nullptr);
  if (!snapshot->valid() || !(snapshot->params() == store_->params())) {
    return Status::InvalidArgument(
        "snapshot params do not match this instance");
  }
  Flush();
  NodeSketch scratch(store_->params());
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    store_->Load(i, &scratch);
    Status s = snapshot->MergeNodeDelta(i, scratch);
    if (!s.ok()) return s;
  }
  snapshot->AddUpdates(num_updates_);
  return Status::Ok();
}

Status GraphZeppelin::WriteNodeRangeTo(
    uint64_t lo, uint64_t hi,
    const std::function<Status(const void* data, size_t size)>& write) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  if (!(lo < hi && hi <= config_.num_nodes)) {
    return Status::InvalidArgument("bad node range");
  }
  Flush();
  NodeSketch scratch(store_->params());
  return GraphSnapshot::SaveRangeToSink(
      write, store_->params(), lo, hi,
      [this, &scratch](NodeId i) -> const NodeSketch& {
        store_->Load(i, &scratch);
        return scratch;
      });
}

Status GraphZeppelin::MergeSerializedNodeRange(const uint8_t* data,
                                               size_t size) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  uint64_t lo = 0, hi = 0;
  size_t payload_offset = 0;
  Status s = GraphSnapshot::ParseSerializedNodeRange(
      data, size, store_->params(), &lo, &hi, &payload_offset);
  if (!s.ok()) return s;
  Flush();
  // The store's MergeDelta is the ingestion-path XOR; a migration delta
  // folds in exactly like a worker's batch delta.
  NodeSketch scratch(store_->params());
  const size_t record = NodeSketch::SerializedSizeFor(store_->params());
  const uint8_t* cursor = data + payload_offset;
  for (uint64_t i = lo; i < hi; ++i) {
    scratch.DeserializeFrom(cursor);
    store_->MergeDelta(static_cast<NodeId>(i), scratch);
    cursor += record;
  }
  return Status::Ok();
}

Status GraphZeppelin::LoadSnapshot(const GraphSnapshot& snapshot) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  if (!snapshot.valid() || !(snapshot.params() == store_->params())) {
    return Status::InvalidArgument(
        "snapshot sketch parameters do not match this instance");
  }
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    store_->Store(i, snapshot.sketch(i));
  }
  num_updates_ = snapshot.num_updates();
  return Status::Ok();
}

ConnectivityResult GraphZeppelin::ListSpanningForest() {
  return Connectivity(Snapshot(), config_.query_threads);
}

Status GraphZeppelin::SaveCheckpoint(const std::string& path) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  // Streaming form of Snapshot().SaveToFile(path): same file format
  // (checkpoints ARE snapshots), but only one record in flight, so a
  // disk-backed store larger than RAM can still checkpoint.
  Flush();
  NodeSketch scratch(store_->params());
  return GraphSnapshot::SaveStream(
      path, store_->params(), num_updates_,
      [this, &scratch](NodeId i) -> const NodeSketch& {
        store_->Load(i, &scratch);
        return scratch;
      });
}

Status GraphZeppelin::LoadCheckpoint(const std::string& path,
                                     size_t offset) {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  // Streaming counterpart of LoadFromFile + LoadSnapshot: records go
  // straight into the store without materializing a snapshot.
  uint64_t saved_updates = 0;
  Status s = GraphSnapshot::LoadStream(
      path, store_->params(), &saved_updates,
      [this](NodeId i, const NodeSketch& sketch) {
        store_->Store(i, sketch);
      },
      offset);
  if (!s.ok()) return s;
  num_updates_ = saved_updates;
  return Status::Ok();
}

const NodeSketchParams& GraphZeppelin::sketch_params() const {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  return store_->params();
}

size_t GraphZeppelin::RamByteSize() const {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  // The batch pool owns every slab (held by gutters, queued, or free),
  // so gutter RamByteSize covers only the structures the gutters own.
  return store_->RamByteSize() + batch_pool_->RamByteSize() +
         gutters_->RamByteSize();
}

size_t GraphZeppelin::DiskByteSize() const {
  GZ_CHECK_MSG(initialized_, "Init() not called");
  return store_->DiskByteSize() + gutters_->DiskByteSize();
}

}  // namespace gz
