#include "core/snapshot_cache.h"

#include <algorithm>
#include <utility>

namespace gz {
namespace {

// A same-params all-zero snapshot: the XOR identity, and the starting
// content of every shard the cache has not pulled from yet.
GraphSnapshot ZeroSnapshot(const NodeSketchParams& params) {
  return GraphSnapshot(
      std::vector<NodeSketch>(params.num_nodes, NodeSketch(params)), 0);
}

}  // namespace

std::vector<int> SnapshotCache::PlannedPulls(
    uint64_t epoch, const ShardWatermarks& marks) const {
  (void)epoch;  // Content is a function of per-shard marks alone; the
                // epoch only versions the key.
  std::vector<int> pulls;
  for (const auto& [shard, mark] : marks) {
    if (NeedsPull(shard, mark)) pulls.push_back(shard);
  }
  return pulls;
}

Status SnapshotCache::PullShard(int shard, const NodeSketchParams& params,
                                const RangePuller& puller) {
  GraphSnapshot& content = shard_content_.at(shard);
  const uint64_t num_nodes = params.num_nodes;
  const uint64_t step =
      nodes_per_chunk_ == 0 ? num_nodes : nodes_per_chunk_;
  std::vector<uint8_t> fresh;
  for (uint64_t lo = 0; lo < num_nodes; lo += step) {
    const uint64_t hi = std::min(num_nodes, lo + step);
    // The transition old -> new, expressed in XOR: folding the old
    // chunk cancels its prior contribution, folding the new chunk
    // installs the current one — in the merged snapshot AND in the
    // retained per-shard content (where old ^ old zeroes the chunk
    // first).
    const std::vector<uint8_t> old = content.ExtractNodeRange(lo, hi);
    fresh.clear();
    Status s = puller(shard, lo, hi, &fresh);
    if (!s.ok()) return s;
    ++range_pulls_;
    s = merged_.MergeSerializedNodeRange(old.data(), old.size());
    if (!s.ok()) return s;
    s = merged_.MergeSerializedNodeRange(fresh.data(), fresh.size());
    if (!s.ok()) return s;
    s = content.MergeSerializedNodeRange(old.data(), old.size());
    if (!s.ok()) return s;
    s = content.MergeSerializedNodeRange(fresh.data(), fresh.size());
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status SnapshotCache::Refresh(uint64_t epoch, const ShardWatermarks& marks,
                              uint64_t total_updates,
                              const NodeSketchParams& caller_params,
                              const RangePuller& puller) {
  // Normalize rounds = 0 ("pick the default") to its resolved value:
  // snapshots and range-delta headers always carry the resolved count,
  // and an unresolved params here would read as a geometry change and
  // force a cold rebuild on every refresh.
  NodeSketchParams params = caller_params;
  if (params.rounds <= 0) {
    params.rounds = NodeSketch::DefaultRounds(params.num_nodes);
  }
  if (!valid() || !(merged_.params() == params)) {
    Invalidate();
    merged_ = ZeroSnapshot(params);
    ++cold_builds_;
  }
  ++refreshes_;
  // Vanished shards (removed from the table; their content migrated to
  // survivors, whose watermarks moved): the shard's true final state is
  // zero, so one more fold of its last-known content cancels it out of
  // the merged snapshot.
  for (auto it = shard_content_.begin(); it != shard_content_.end();) {
    if (marks.count(it->first) > 0) {
      ++it;
      continue;
    }
    const GraphSnapshot& content = it->second;
    const uint64_t num_nodes = params.num_nodes;
    const uint64_t step =
        nodes_per_chunk_ == 0 ? num_nodes : nodes_per_chunk_;
    for (uint64_t lo = 0; lo < num_nodes; lo += step) {
      const uint64_t hi = std::min(num_nodes, lo + step);
      const std::vector<uint8_t> old = content.ExtractNodeRange(lo, hi);
      const Status s = merged_.MergeSerializedNodeRange(old.data(),
                                                        old.size());
      if (!s.ok()) {
        Invalidate();
        return s;
      }
    }
    it = shard_content_.erase(it);
  }
  // New and moved shards, pulled exactly when the shared NeedsPull
  // predicate says so — the same predicate PlannedPulls() consulted, so
  // a pre-staging caller's plan always matches the pulls made here. A
  // shard whose watermark is unchanged is skipped outright (its sketch
  // content cannot have changed); a brand-new shard at the zero
  // watermark is installed as the XOR identity without a pull.
  for (const auto& [shard, mark] : marks) {
    if (shard_content_.find(shard) == shard_content_.end()) {
      shard_content_.emplace(shard, ZeroSnapshot(params));
    }
    if (!NeedsPull(shard, mark)) continue;
    const Status s = PullShard(shard, params, puller);
    if (!s.ok()) {
      Invalidate();
      return s;
    }
  }
  // Range deltas carry no update counts by design; the owner's durable
  // bookkeeping supplies the stream position.
  merged_.SetUpdates(total_updates);
  epoch_ = epoch;
  marks_ = marks;
  return Status::Ok();
}

void SnapshotCache::Invalidate() {
  merged_ = GraphSnapshot();
  shard_content_.clear();
  marks_.clear();
  epoch_ = 0;
}

}  // namespace gz
