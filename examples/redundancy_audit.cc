// k-edge-connectivity audit of a streamed backbone — exercises the
// KEdgeConnectivity workload: k edge-disjoint spanning forests peeled
// from the sketches form a certificate C with min(lambda(G), k) =
// min(lambda(C), k), so the EXACT redundancy level (capped at k) comes
// out of a sparse certificate however dense the streamed network was.
//
// Scenario: an operator wants "does every point of the backbone
// survive any single link failure?" (2-edge-connected?) — and when the
// answer is no, how far short it falls.
#include <cstdio>

#include "core/graph_zeppelin.h"
#include "workloads/k_connectivity.h"

namespace {

int Audit(const gz::GraphSnapshot& snapshot, int k) {
  using namespace gz;
  const Result<KConnectivityResult> audited = KEdgeConnectivity(snapshot, k);
  if (!audited.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 audited.status().ToString().c_str());
    return -1;
  }
  const KConnectivityResult& r = audited.value();
  if (r.sketch_failed) {
    std::fprintf(stderr, "sketch query failed; re-run with another seed\n");
    return -1;
  }
  std::printf("  certified min(lambda, %d) = %d -> %s"
              " (certificate: %zu edges)\n",
              r.k, r.certified_connectivity,
              r.is_k_edge_connected ? "survives any single link failure"
                                    : "NOT fully redundant",
              r.certificate.size());
  return r.certified_connectivity;
}

}  // namespace

int main() {
  using namespace gz;

  // Backbone: a ring of 24 routers (every link failure survivable)
  // plus chords for extra capacity, and one stub router hanging off
  // the ring by a single link — the redundancy hole.
  constexpr uint64_t kRouters = 25;
  constexpr NodeId kStub = 24;
  GraphZeppelinConfig config;
  config.num_nodes = kRouters;
  config.seed = 29;
  config.rounds = RoundsForForests(kRouters, 2);
  GraphZeppelin gz(config);
  if (!gz.Init().ok()) return 1;

  uint64_t links = 0;
  for (NodeId i = 0; i < 24; ++i) {
    gz.Update({Edge(std::min<NodeId>(i, (i + 1) % 24),
                    std::max<NodeId>(i, (i + 1) % 24)),
               UpdateType::kInsert});
    ++links;
  }
  for (NodeId i = 0; i < 24; i += 6) {
    gz.Update({Edge(i, i + 3), UpdateType::kInsert});  // Chords.
    ++links;
  }
  gz.Update({Edge(11, kStub), UpdateType::kInsert});  // The stub.
  ++links;

  std::printf("backbone: %llu routers, %llu links streamed\n",
              static_cast<unsigned long long>(kRouters),
              static_cast<unsigned long long>(links));

  std::printf("audit with the stub attached:\n");
  if (Audit(gz.Snapshot(), 2) < 0) return 1;  // Expect 1: the stub link.

  // The operator adds a second uplink for the stub and re-audits.
  gz.Update({Edge(5, kStub), UpdateType::kInsert});
  std::printf("audit after adding a second stub uplink:\n");
  const int certified = Audit(gz.Snapshot(), 2);
  if (certified < 0) return 1;
  std::printf("backbone is %s\n",
              certified >= 2 ? "now 2-edge-connected"
                             : "still not 2-edge-connected");
  return 0;
}
