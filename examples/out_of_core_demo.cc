// Out-of-core demo: the hybrid streaming model (paper Section 4).
// Sketches live in a preallocated file and are updated with batched
// read-XOR-write cycles; stream updates are buffered through the
// on-disk gutter tree. RAM holds only buffers and metadata — this is
// the configuration that lets GraphZeppelin process graphs whose
// sketches exceed main memory.
#include <cstdio>

#include "core/graph_zeppelin.h"
#include "stream/kronecker_generator.h"
#include "stream/stream_transform.h"
#include "util/mem_usage.h"
#include "util/timer.h"

int main() {
  using namespace gz;

  // A dense Kronecker stream (kron9-style, scaled for the demo).
  KroneckerParams kp;
  kp.scale = 9;
  kp.density = 0.5;
  kp.seed = 3;
  KroneckerGenerator gen(kp);
  StreamTransformParams tp;
  tp.num_nodes = gen.num_nodes();
  tp.seed = 3;
  const StreamTransformResult stream = BuildStream(gen.Generate(), tp);
  std::printf("stream: %zu updates over %llu nodes\n", stream.updates.size(),
              static_cast<unsigned long long>(gen.num_nodes()));

  GraphZeppelinConfig config;
  config.num_nodes = gen.num_nodes();
  config.seed = 1;
  config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
  config.storage = GraphZeppelinConfig::Storage::kDisk;
  config.disk_dir = "/tmp";
  GraphZeppelin gz(config);
  const Status init = gz.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
    return 1;
  }

  char ram_buf[32], disk_buf[32];
  std::printf("RAM footprint:  %s (buffers + metadata only)\n",
              FormatBytes(gz.RamByteSize(), ram_buf, sizeof(ram_buf)));
  std::printf("disk footprint: %s (sketch store + gutter tree)\n",
              FormatBytes(gz.DiskByteSize(), disk_buf, sizeof(disk_buf)));

  WallTimer timer;
  gz.Update(stream.updates.data(), stream.updates.size());
  gz.Flush();
  const double seconds = timer.Seconds();
  std::printf("ingested %zu updates in %.2fs (%.0f updates/s)\n",
              stream.updates.size(), seconds,
              static_cast<double>(stream.updates.size()) / seconds);

  WallTimer query_timer;
  const ConnectivityResult result = gz.ListSpanningForest();
  std::printf("query: %zu components in %.3fs (failed=%s)\n",
              result.num_components, query_timer.Seconds(),
              result.failed ? "true" : "false");
  std::printf("disconnected nodes in stream: %zu (each is a singleton)\n",
              stream.disconnected_nodes.size());
  return result.failed ? 1 : 0;
}
