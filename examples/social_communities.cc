// Social-network community tracking (paper introduction): users add
// and remove friendships over time; connected components track the
// evolving community structure. GraphZeppelin supports queries at any
// point in the stream, so we watch two communities merge through a
// "bridge" friendship and split again when it dissolves.
#include <cstdio>
#include <set>
#include <utility>

#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "util/random.h"

namespace {

void Report(const char* phase, const gz::ConnectivityResult& r,
            gz::NodeId alice, gz::NodeId bob) {
  std::printf("%-34s components=%3zu  alice~bob=%s\n", phase,
              r.num_components,
              r.component_of[alice] == r.component_of[bob] ? "yes" : "no");
}

}  // namespace

int main() {
  using namespace gz;

  // Two communities of 100 users each, plus 56 not-yet-active accounts.
  constexpr uint64_t kUsers = 256;
  constexpr NodeId kAlice = 5;    // Community A member.
  constexpr NodeId kBob = 150;    // Community B member.

  GraphZeppelinConfig config;
  config.num_nodes = kUsers;
  config.seed = 4;
  GraphZeppelin gz(config);
  if (!gz.Init().ok()) return 1;

  // Build community A over users [0, 100) and B over [100, 200): a
  // connecting chain plus random extra friendships for density.
  SplitMix64 rng(11);
  std::set<std::pair<NodeId, NodeId>> friendships;
  auto add_community = [&](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u + 1 < hi; ++u) {
      gz.Update({Edge(u, u + 1), UpdateType::kInsert});
      friendships.insert({u, u + 1});
    }
    for (NodeId k = 0; k < 2 * (hi - lo); ++k) {
      const NodeId a = lo + static_cast<NodeId>(rng.NextBelow(hi - lo));
      const NodeId b = lo + static_cast<NodeId>(rng.NextBelow(hi - lo));
      if (a == b) continue;
      const Edge e(a, b);
      if (!friendships.insert({e.u, e.v}).second) continue;  // Already friends.
      gz.Update({e, UpdateType::kInsert});
    }
  };
  add_community(0, 100);
  add_community(100, 200);

  Report("initial communities:", gz.ListSpanningForest(), kAlice, kBob);

  // A bridge friendship forms between the communities.
  gz.Update({Edge(kAlice, kBob), UpdateType::kInsert});
  Report("after alice befriends bob:", gz.ListSpanningForest(), kAlice,
         kBob);

  // New users join community A.
  for (NodeId u = 200; u < 230; ++u) {
    gz.Update({Edge(static_cast<NodeId>(u % 100), u), UpdateType::kInsert});
  }
  Report("after 30 new users join:", gz.ListSpanningForest(), kAlice, kBob);

  // The bridge friendship dissolves: communities split again.
  gz.Update({Edge(kAlice, kBob), UpdateType::kDelete});
  Report("after the bridge dissolves:", gz.ListSpanningForest(), kAlice,
         kBob);

  return 0;
}
