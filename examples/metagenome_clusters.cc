// Metagenome assembly scenario (paper introduction): genes are
// vertices, sequence-overlap relations are edges, and connected
// components approximate gene clusters / protein families. The overlap
// graph is *dense inside clusters* — exactly the regime GraphZeppelin
// targets — and assembly pipelines refine overlaps over time, deleting
// spurious edges, so the stream mixes inserts and deletes.
//
// We synthesize a ground-truth clustering, stream the noisy overlap
// graph (with spurious inter-cluster overlaps that are later retracted),
// and check that GraphZeppelin recovers the clusters exactly.
#include <cstdio>
#include <vector>

#include "core/graph_zeppelin.h"
#include "stream/stream_types.h"
#include "util/random.h"

int main() {
  using namespace gz;

  constexpr uint64_t kClusters = 12;
  constexpr uint64_t kGenesPerCluster = 40;
  constexpr uint64_t kNumGenes = kClusters * kGenesPerCluster;
  SplitMix64 rng(7);

  GraphZeppelinConfig config;
  config.num_nodes = kNumGenes;
  config.seed = 99;
  config.num_workers = 2;
  GraphZeppelin gz(config);
  if (!gz.Init().ok()) return 1;

  uint64_t true_overlaps = 0;
  uint64_t spurious = 0;

  // Dense intra-cluster overlaps: each gene overlaps ~60% of its
  // cluster-mates.
  for (uint64_t c = 0; c < kClusters; ++c) {
    const NodeId base = static_cast<NodeId>(c * kGenesPerCluster);
    for (NodeId i = 0; i + 1 < kGenesPerCluster; ++i) {
      for (NodeId j = i + 1; j < kGenesPerCluster; ++j) {
        // Keep every cluster connected: always link consecutive genes.
        if (j != i + 1 && !rng.NextBool(0.6)) continue;
        gz.Update({Edge(base + i, base + j), UpdateType::kInsert});
        ++true_overlaps;
      }
    }
  }

  // Spurious cross-cluster overlaps (sequencing noise), later retracted
  // when the assembler's refinement pass rejects them.
  std::vector<Edge> retracted;
  for (int k = 0; k < 300; ++k) {
    const NodeId a = static_cast<NodeId>(rng.NextBelow(kNumGenes));
    const NodeId b = static_cast<NodeId>(rng.NextBelow(kNumGenes));
    if (a == b || a / kGenesPerCluster == b / kGenesPerCluster) continue;
    const Edge e(a, b);
    bool duplicate = false;
    for (const Edge& prev : retracted) duplicate |= prev == e;
    if (duplicate) continue;
    gz.Update({e, UpdateType::kInsert});
    retracted.push_back(e);
    ++spurious;
  }

  // Before refinement: clusters are (wrongly) merged by noise edges.
  const ConnectivityResult noisy = gz.ListSpanningForest();
  std::printf("genes: %llu, true overlaps: %llu, spurious overlaps: %llu\n",
              static_cast<unsigned long long>(kNumGenes),
              static_cast<unsigned long long>(true_overlaps),
              static_cast<unsigned long long>(spurious));
  std::printf("clusters before refinement: %zu (noise merges clusters)\n",
              noisy.num_components);

  // Refinement pass: delete every spurious overlap.
  for (const Edge& e : retracted) gz.Update({e, UpdateType::kDelete});

  const ConnectivityResult refined = gz.ListSpanningForest();
  std::printf("clusters after refinement:  %zu (expected %llu)\n",
              refined.num_components,
              static_cast<unsigned long long>(kClusters));
  if (refined.failed || refined.num_components != kClusters) {
    std::fprintf(stderr, "cluster recovery failed\n");
    return 1;
  }

  // Report cluster sizes from the component labels.
  const auto components = ComponentsFromLabels(refined.component_of);
  std::printf("cluster sizes:");
  for (const auto& members : components) std::printf(" %zu", members.size());
  std::printf("\nall %llu clusters recovered exactly\n",
              static_cast<unsigned long long>(kClusters));
  return 0;
}
