// Critical-link analysis on a dynamic network stream — exercises the
// extension algorithms: a 2-forest spanning-forest decomposition
// (k-edge-connectivity certificate) extracted from GraphZeppelin
// sketches, then exact bridge finding on the sparse certificate.
//
// Scenario: a backbone network whose links flap (insert/delete). The
// operator wants the links whose single failure would partition the
// network (bridges), without storing the dense graph.
#include <cstdio>

#include "algos/bridges.h"
#include "algos/spanning_forests.h"
#include "core/graph_zeppelin.h"
#include "util/random.h"

int main() {
  using namespace gz;

  // Topology: four dense "pods" of 16 routers, chained by single
  // inter-pod trunks (the critical links), plus one redundant pair of
  // trunks between pods 2 and 3 (not critical).
  constexpr uint64_t kPodSize = 16;
  constexpr uint64_t kPods = 4;
  constexpr uint64_t kRouters = kPodSize * kPods;

  GraphZeppelinConfig config;
  config.num_nodes = kRouters;
  config.seed = 8;
  // The forest decomposition needs k * ceil(log_1.5 V) sketch rounds.
  config.rounds = RoundsForForests(kRouters, 2);
  GraphZeppelin gz(config);
  if (!gz.Init().ok()) return 1;

  SplitMix64 rng(3);
  uint64_t links = 0;
  // Dense intra-pod meshes.
  for (uint64_t pod = 0; pod < kPods; ++pod) {
    const NodeId base = static_cast<NodeId>(pod * kPodSize);
    for (NodeId i = 0; i + 1 < kPodSize; ++i) {
      for (NodeId j = i + 1; j < kPodSize; ++j) {
        if (j != i + 1 && !rng.NextBool(0.5)) continue;
        gz.Update({Edge(base + i, base + j), UpdateType::kInsert});
        ++links;
      }
    }
  }
  // Trunks: pod0-pod1 and pod1-pod2 single, pod2-pod3 redundant pair.
  gz.Update({Edge(3, 16 + 4), UpdateType::kInsert});
  gz.Update({Edge(16 + 9, 32 + 2), UpdateType::kInsert});
  gz.Update({Edge(32 + 7, 48 + 1), UpdateType::kInsert});
  gz.Update({Edge(32 + 11, 48 + 6), UpdateType::kInsert});
  links += 4;

  // Link flaps: a trunk goes down and comes back.
  gz.Update({Edge(16 + 9, 32 + 2), UpdateType::kDelete});
  gz.Update({Edge(16 + 9, 32 + 2), UpdateType::kInsert});

  std::printf("network: %llu routers, %llu links streamed\n",
              static_cast<unsigned long long>(kRouters),
              static_cast<unsigned long long>(links + 2));

  // Extract a 2-edge-connectivity certificate from a snapshot of the
  // sketches and find the bridges on it (the temporary snapshot is
  // consumed in place — no second copy of the sketch state).
  const Result<ForestDecomposition> extracted =
      ExtractSpanningForests(gz.Snapshot(), 2);
  if (!extracted.ok()) {
    std::fprintf(stderr, "forest extraction rejected: %s\n",
                 extracted.status().ToString().c_str());
    return 1;
  }
  const ForestDecomposition& decomposition = extracted.value();
  if (decomposition.failed) {
    std::fprintf(stderr, "forest extraction failed\n");
    return 1;
  }
  const EdgeList certificate = decomposition.CertificateEdges();
  std::printf("certificate: %zu forests, %zu edges (vs %llu in graph)\n",
              decomposition.forests.size(), certificate.size(),
              static_cast<unsigned long long>(links + 2));

  const EdgeList bridges = FindBridges(kRouters, certificate);
  std::printf("critical links (bridges):\n");
  for (const Edge& e : bridges) {
    std::printf("  router %u <-> router %u\n", e.u, e.v);
  }

  // Expectation: exactly the two single trunks are critical; the
  // redundant pod2-pod3 pair is not.
  const bool correct =
      bridges.size() == 2 &&
      ((bridges[0] == Edge(3, 20) && bridges[1] == Edge(25, 34)) ||
       (bridges[0] == Edge(25, 34) && bridges[1] == Edge(3, 20)));
  std::printf("%s\n", correct ? "matches expected critical set"
                              : "UNEXPECTED critical set");
  return correct ? 0 : 1;
}
