// Quickstart: build a GraphZeppelin instance, stream edge insertions
// and deletions, and query the connected components.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/graph_zeppelin.h"

int main() {
  using namespace gz;

  // A graph on 16 vertices. All sketch/buffering defaults apply: 7
  // sketch columns (failure probability ~1/100 per sketch), leaf-only
  // gutters, in-RAM sketches, 2 worker threads.
  GraphZeppelinConfig config;
  config.num_nodes = 16;
  config.seed = 2022;

  GraphZeppelin gz(config);
  const Status init = gz.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
    return 1;
  }

  // Stream: a triangle {0,1,2}, a path 3-4-5, and an edge 6-7 that is
  // later deleted. Inserts and deletes may be arbitrarily interleaved.
  gz.Update({Edge(0, 1), UpdateType::kInsert});
  gz.Update({Edge(1, 2), UpdateType::kInsert});
  gz.Update({Edge(6, 7), UpdateType::kInsert});
  gz.Update({Edge(0, 2), UpdateType::kInsert});
  gz.Update({Edge(3, 4), UpdateType::kInsert});
  gz.Update({Edge(4, 5), UpdateType::kInsert});
  gz.Update({Edge(6, 7), UpdateType::kDelete});

  // Query: flushes buffers and runs Boruvka over the sketches.
  const ConnectivityResult result = gz.ListSpanningForest();
  if (result.failed) {
    std::fprintf(stderr, "sketch query failed (probability ~1/V^c)\n");
    return 1;
  }

  std::printf("ingested %llu updates\n",
              static_cast<unsigned long long>(gz.num_updates_ingested()));
  std::printf("connected components: %zu\n", result.num_components);
  std::printf("spanning forest edges:");
  for (const Edge& e : result.spanning_forest) {
    std::printf(" (%u,%u)", e.u, e.v);
  }
  std::printf("\n");

  const auto components = ComponentsFromLabels(result.component_of);
  for (const auto& members : components) {
    if (members.size() < 2) continue;  // Skip isolated vertices.
    std::printf("component:");
    for (NodeId v : members) std::printf(" %u", v);
    std::printf("\n");
  }
  return 0;
}
