// Sliding-window connectivity with a standing query — exercises the
// WindowedConnectivity workload: a WindowIngestor turns "connected
// within the last W observations?" into plain connectivity on an
// instance that always holds exactly the windowed graph (expiry
// deletes through the unchanged delete path ARE the decay), and a
// StandingQueryRegistry notifies only when the windowed answer
// CHANGES.
//
// Scenario: two sites exchange traffic through relays. The operator
// watches "are site A and site B linked by RECENT traffic?" — old
// flows must stop counting, so a plain cumulative graph would answer
// the wrong question.
#include <cstdio>
#include <vector>

#include "workloads/windowed_connectivity.h"

int main() {
  using namespace gz;

  constexpr uint64_t kHosts = 32;
  constexpr NodeId kSiteA = 0, kSiteB = 31;
  WindowedConnectivityParams params;
  params.config.num_nodes = kHosts;
  params.config.seed = 19;
  params.window.num_nodes = kHosts;
  params.window.window = 12;  // Only the last 12 flows count.

  WindowedConnectivity wc(params);
  if (!wc.Init().ok()) return 1;
  wc.standing_queries().Add({StandingQueryKind::kConnected, kSiteA, kSiteB});

  // Phase 1: a relay chain A -> 10 -> 20 -> B comes up.
  // Phase 2: unrelated chatter pushes the chain out of the window.
  // Phase 3: a direct A - B flow restores the link.
  std::vector<Edge> flows = {
      Edge(kSiteA, 10), Edge(10, 20), Edge(20, kSiteB),  // Chain up.
      Edge(1, 2),   Edge(3, 4),   Edge(5, 6),   Edge(7, 8),    // Chatter...
      Edge(9, 11),  Edge(12, 13), Edge(14, 15), Edge(16, 17),
      Edge(18, 19), Edge(21, 22), Edge(23, 24), Edge(25, 26),  // ...expires
      Edge(27, 28),                                            // the chain.
      Edge(kSiteA, kSiteB),                                    // Direct link.
  };

  uint64_t observed = 0;
  for (const Edge& flow : flows) {
    wc.Observe(flow);
    ++observed;
    const Result<size_t> fired = wc.EvaluateStandingQueries(
        1, [observed](const StandingQueryNotification& n,
                      const GraphSnapshot&) {
          std::printf("  after %3llu flows: sites %s (notification #%llu)\n",
                      static_cast<unsigned long long>(observed),
                      n.answer.connected ? "LINKED" : "not linked",
                      static_cast<unsigned long long>(n.sequence));
        });
    if (!fired.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   fired.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("window now holds %zu distinct recent flows "
              "(%llu observed in total)\n",
              wc.window().live_edges(),
              static_cast<unsigned long long>(wc.window().observations()));
  // The answer flipped with the WINDOW, not the cumulative stream: a
  // cumulative graph would have reported LINKED from flow 3 onward,
  // forever.
  return 0;
}
