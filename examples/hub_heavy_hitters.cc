// Heavy-hitter analysis of a follow-graph stream — exercises the
// count-min side sketch riding the ingest path: while the linear XOR
// sketches maintain connectivity, a turnstile CM sketch (insert = +1,
// delete = -1) tracks per-node degrees and per-edge multiplicities,
// and answers "who are the hub accounts?" in O(k) candidate
// re-estimation, no adjacency storage.
//
// Scenario: a social service streams follow/unfollow events. The
// operator wants the highest-degree accounts (hubs) live, from the
// same pass that maintains connectivity — and the counts must survive
// churn: an unfollow decrements exactly what the follow incremented.
#include <algorithm>
#include <cstdio>

#include "core/graph_zeppelin.h"
#include "util/random.h"
#include "workloads/count_min.h"

int main() {
  using namespace gz;

  constexpr uint64_t kAccounts = 512;
  GraphZeppelinConfig config;
  config.num_nodes = kAccounts;
  config.seed = 12;
  config.heavy_hitter_width = 2048;  // Enables the side sketch.
  GraphZeppelin gz(config);
  if (!gz.Init().ok()) return 1;

  // Three celebrity accounts accumulate followers; everyone else
  // follows a couple of random peers. Set semantics: each pair is
  // followed at most once (the XOR sketches require it; the CM side
  // would happily count multigraph multiplicities too).
  const NodeId celebrities[] = {7, 42, 300};
  SplitMix64 rng(5);
  uint64_t events = 0;
  EdgeList follows_of_42;  // For the churn phase below.
  for (NodeId fan = 0; fan < kAccounts; ++fan) {
    for (const NodeId star : celebrities) {
      if (fan == star) continue;
      if (!rng.NextBool(fan % 3 == 0 ? 0.9 : 0.4)) continue;
      const Edge e(std::min(fan, star), std::max(fan, star));
      gz.Update({e, UpdateType::kInsert});
      if (star == 42) follows_of_42.push_back(e);
      ++events;
    }
    const NodeId peer = static_cast<NodeId>(rng.Next() % kAccounts);
    if (peer != fan) {
      gz.Update({Edge(std::min(fan, peer), std::max(fan, peer)),
                 UpdateType::kInsert});
      ++events;
    }
  }
  // Churn: account 42 loses its first 50 followers. Only edges that
  // were actually inserted are deleted (set semantics), and each
  // unfollow decrements exactly what the follow incremented.
  const size_t unfollows = std::min<size_t>(50, follows_of_42.size());
  for (size_t i = 0; i < unfollows; ++i) {
    gz.Update({follows_of_42[i], UpdateType::kDelete});
  }
  events += unfollows;

  const HeavyHitterSketch* hh = gz.heavy_hitters();
  std::printf("stream: %llu events over %llu accounts (%llu tracked)\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(kAccounts),
              static_cast<unsigned long long>(hh->updates_applied()));

  std::printf("top accounts by live degree:\n");
  for (const HeavyHitterEntry& entry : hh->TopDegrees(5)) {
    std::printf("  account %4llu  degree %lld\n",
                static_cast<unsigned long long>(entry.key),
                static_cast<long long>(entry.count));
  }
  // The CM fold is linear, so a sharded deployment answers this
  // identically: per-shard sketches sum-merge at the coordinator
  // (gz_query --heavy-hitters over a live cluster does exactly that).
  return 0;
}
