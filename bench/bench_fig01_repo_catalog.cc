// Figure 1: "published graphs have few nodes or are sparse".
//
// The paper plots every NetworkRepository dataset as (node count,
// density) and draws the 16 GB adjacency-list line. Offline
// substitution: we synthesize a catalog with the same selection-biased
// shape — density caps that shrink as node count grows, because graphs
// that would not fit in commodity RAM are rarely published — and report
// how many entries fall below the 16 GB line.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "stream/stream_types.h"
#include "util/random.h"

namespace {

// Adjacency-list bytes: 8 bytes per directed edge (two per undirected
// edge), the accounting behind the paper's 16 GB feasibility line.
double AdjacencyListBytes(double nodes, double edges) {
  return 2.0 * edges * 8.0 + nodes * 8.0;
}

}  // namespace

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 1", "synthetic published-graph catalog");

  constexpr double kRamBudget = 16.0 * (1ULL << 30);
  SplitMix64 rng(2022);
  const int catalog_size = bench::GetEnvInt("GZ_BENCH_CATALOG", 2000);

  int below_line = 0;
  double max_nodes_dense = 0;  // Largest dense (>1% density) graph seen.
  double largest_bytes = 0;
  for (int i = 0; i < catalog_size; ++i) {
    // Log-uniform node counts 10^2..10^9, mirroring repository spread.
    const double log_nodes = 2.0 + 7.0 * rng.NextDouble();
    const double nodes = std::pow(10.0, log_nodes);
    // Selection bias: published density rarely exceeds what fits in a
    // few GB, so the cap decays with node count.
    const double density_cap =
        std::min(1.0, 5e9 / (nodes * nodes));  // ~ a few GB of edges.
    const double density =
        density_cap * std::pow(10.0, -3.0 * rng.NextDouble());
    const double edges = density * nodes * (nodes - 1.0) / 2.0;
    const double bytes = AdjacencyListBytes(nodes, edges);
    if (bytes < kRamBudget) ++below_line;
    if (density > 0.01) max_nodes_dense = std::max(max_nodes_dense, nodes);
    largest_bytes = std::max(largest_bytes, bytes);
  }

  std::printf("catalog entries:                   %d\n", catalog_size);
  std::printf("fit in 16 GiB as adjacency list:   %d (%.1f%%)\n", below_line,
              100.0 * below_line / catalog_size);
  std::printf("largest dense (>1%%) graph:         %.2e nodes\n",
              max_nodes_dense);
  std::printf("largest catalog entry:             %.2f GiB\n",
              largest_bytes / (1ULL << 30));
  std::printf(
      "\nShape check vs paper: nearly all entries sit below the 16 GiB\n"
      "line, and dense graphs only appear at small node counts -- the\n"
      "selection-bias argument motivating GraphZeppelin.\n");

  // The flip side the paper argues for: what GraphZeppelin's sketch
  // space (~280 V log^2 V bytes) admits under the same budget.
  for (uint64_t v : {100000ULL, 1000000ULL, 10000000ULL}) {
    const double logv = std::log2(static_cast<double>(v));
    const double sketch_bytes = 280.0 * v * logv * logv;
    std::printf("sketch space for V=%-9llu ~ %7.2f GiB (any density)\n",
                static_cast<unsigned long long>(v),
                sketch_bytes / (1ULL << 30));
  }
  return 0;
}
