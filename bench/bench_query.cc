// Query-layer benchmark: parallel vs single-thread Boruvka, plus the
// GraphSnapshot lifecycle costs (capture, XOR merge, serialize,
// deserialize). Emits one JSON object per vertex scale so BENCH_*.json
// trajectories can track the query path across builds.
//
// Sizes: V = 2^GZ_BENCH_QUERY_LOGV_MIN .. 2^GZ_BENCH_QUERY_LOGV_MAX
// (defaults 12..14; raise to 17 on many-core hardware to reproduce the
// headline "parallel Boruvka >= 1.5x at V = 2^17" point — the pool
// auto-sizes via GZ_BENCH_QUERY_THREADS=0). Every parallel result is
// GZ_CHECK'd bitwise-identical to the single-thread result.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/graph_snapshot.h"

int main() {
  using namespace gz;
  const int logv_min = bench::GetEnvInt("GZ_BENCH_QUERY_LOGV_MIN", 12);
  const int logv_max = bench::GetEnvInt("GZ_BENCH_QUERY_LOGV_MAX", 14);
  const int par_threads = ResolveQueryThreads(
      bench::GetEnvInt("GZ_BENCH_QUERY_THREADS", 0));

  std::fprintf(stderr,
               "query bench: V = 2^%d..2^%d, parallel pool = %d threads\n",
               logv_min, logv_max, par_threads);
  std::printf("[\n");
  for (int logv = logv_min; logv <= logv_max; ++logv) {
    const uint64_t n = 1ULL << logv;
    // Sparse random graph, avg degree ~8: forces Boruvka through many
    // rounds with a large live-component population (the parallel
    // engine's target regime).
    const EdgeList edges = RandomConnectedGraph(n, 4 * n, 1000 + logv);

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_nodes = n;
    // Halves of the stream land in two same-seed instances so the
    // merge measurement below folds two genuinely different snapshots.
    GraphZeppelin a(config), b(config);
    GZ_CHECK_OK(a.Init());
    GZ_CHECK_OK(b.Init());
    std::vector<GraphUpdate> updates;
    updates.reserve(edges.size());
    for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});
    const size_t half = updates.size() / 2;
    a.Update(updates.data(), half);
    b.Update(updates.data() + half, updates.size() - half);

    WallTimer snap_timer;
    GraphSnapshot snapshot = a.Snapshot();
    const double snapshot_s = snap_timer.Seconds();

    WallTimer merge_timer;
    GZ_CHECK_OK(b.MergeSnapshotInto(&snapshot));
    const double merge_s = merge_timer.Seconds();
    GZ_CHECK(snapshot.num_updates() == updates.size());

    WallTimer ser_timer;
    const std::vector<uint8_t> bytes = snapshot.Serialize();
    const double serialize_s = ser_timer.Seconds();
    WallTimer deser_timer;
    Result<GraphSnapshot> thawed =
        GraphSnapshot::Deserialize(bytes.data(), bytes.size());
    const double deserialize_s = deser_timer.Seconds();
    GZ_CHECK(thawed.ok() && thawed.value() == snapshot);

    // Untimed warmup: the first query after a capture pays first-touch
    // page faults for its scratch copy; without this the second timed
    // run would win on warm pages, not on algorithm.
    GZ_CHECK(!Connectivity(snapshot, 1).failed);

    WallTimer seq_timer;
    const ConnectivityResult seq = Connectivity(snapshot, 1);
    const double boruvka_1t_s = seq_timer.Seconds();
    GZ_CHECK(!seq.failed);

    WallTimer par_timer;
    const ConnectivityResult par = Connectivity(snapshot, par_threads);
    const double boruvka_par_s = par_timer.Seconds();
    // Determinism contract: identical spanning forest, bit for bit.
    GZ_CHECK(!par.failed);
    GZ_CHECK(par.spanning_forest == seq.spanning_forest);
    GZ_CHECK(par.component_of == seq.component_of);

    const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
    std::printf(
        "  {\"v\": %llu, \"edges\": %zu, \"rounds\": %d,\n"
        "   \"snapshot_s\": %.4f, \"merge_s\": %.4f,\n"
        "   \"serialize_s\": %.4f, \"deserialize_s\": %.4f,\n"
        "   \"snapshot_mb\": %.1f, \"serialize_mb_per_s\": %.0f,\n"
        "   \"boruvka_1t_s\": %.4f, \"boruvka_par_s\": %.4f,\n"
        "   \"par_threads\": %d, \"speedup\": %.2f}%s\n",
        static_cast<unsigned long long>(n), edges.size(), snapshot.rounds(),
        snapshot_s, merge_s, serialize_s, deserialize_s, mb,
        serialize_s > 0 ? mb / serialize_s : 0.0, boruvka_1t_s,
        boruvka_par_s, par_threads,
        boruvka_par_s > 0 ? boruvka_1t_s / boruvka_par_s : 0.0,
        logv < logv_max ? "," : "");
  }
  std::printf("]\n");
  return 0;
}
