// Query-layer benchmark: parallel vs single-thread Boruvka, plus the
// GraphSnapshot lifecycle costs (capture, XOR merge, serialize,
// deserialize), plus the serving tier — cached vs delta-refresh vs
// cold snapshot serving, reader-session query qps/p99 at 1/4/16
// concurrent readers with the ingest-rate impact on the writer, and
// the standing-query watch — push vs poll notification latency
// p50/p99 and the writer's ingest rate with 16 live subscriptions.
// Emits
// one JSON object per vertex scale (the serving object last) so
// BENCH_*.json trajectories can track the query path across builds.
//
// Sizes: V = 2^GZ_BENCH_QUERY_LOGV_MIN .. 2^GZ_BENCH_QUERY_LOGV_MAX
// (defaults 12..14; raise to 17 on many-core hardware to reproduce the
// headline "parallel Boruvka >= 1.5x at V = 2^17" point — the pool
// auto-sizes via GZ_BENCH_QUERY_THREADS=0). Every parallel result is
// GZ_CHECK'd bitwise-identical to the single-thread result, and every
// served snapshot bitwise-identical to a full re-fold. Serving knobs:
// GZ_BENCH_SERVING_LOGV (default 11), GZ_BENCH_SERVING_MS (ingest
// window per reader count, default 250), GZ_BENCH_SERVING_QUERIES
// (latency samples per reader, default 25).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/standing_query.h"
#include "core/graph_snapshot.h"
#include "distributed/query_session.h"
#include "distributed/shard_process.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"

namespace {

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1));
  return (*samples)[idx];
}

}  // namespace

int main() {
  using namespace gz;
  const int logv_min = bench::GetEnvInt("GZ_BENCH_QUERY_LOGV_MIN", 12);
  const int logv_max = bench::GetEnvInt("GZ_BENCH_QUERY_LOGV_MAX", 14);
  const int par_threads = ResolveQueryThreads(
      bench::GetEnvInt("GZ_BENCH_QUERY_THREADS", 0));

  std::fprintf(stderr,
               "query bench: V = 2^%d..2^%d, parallel pool = %d threads\n",
               logv_min, logv_max, par_threads);
  std::printf("[\n");
  for (int logv = logv_min; logv <= logv_max; ++logv) {
    const uint64_t n = 1ULL << logv;
    // Sparse random graph, avg degree ~8: forces Boruvka through many
    // rounds with a large live-component population (the parallel
    // engine's target regime).
    const EdgeList edges = RandomConnectedGraph(n, 4 * n, 1000 + logv);

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_nodes = n;
    // Halves of the stream land in two same-seed instances so the
    // merge measurement below folds two genuinely different snapshots.
    GraphZeppelin a(config), b(config);
    GZ_CHECK_OK(a.Init());
    GZ_CHECK_OK(b.Init());
    std::vector<GraphUpdate> updates;
    updates.reserve(edges.size());
    for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});
    const size_t half = updates.size() / 2;
    a.Update(updates.data(), half);
    b.Update(updates.data() + half, updates.size() - half);

    WallTimer snap_timer;
    GraphSnapshot snapshot = a.Snapshot();
    const double snapshot_s = snap_timer.Seconds();

    WallTimer merge_timer;
    GZ_CHECK_OK(b.MergeSnapshotInto(&snapshot));
    const double merge_s = merge_timer.Seconds();
    GZ_CHECK(snapshot.num_updates() == updates.size());

    WallTimer ser_timer;
    const std::vector<uint8_t> bytes = snapshot.Serialize();
    const double serialize_s = ser_timer.Seconds();
    WallTimer deser_timer;
    Result<GraphSnapshot> thawed =
        GraphSnapshot::Deserialize(bytes.data(), bytes.size());
    const double deserialize_s = deser_timer.Seconds();
    GZ_CHECK(thawed.ok() && thawed.value() == snapshot);

    // Untimed warmup: the first query after a capture pays first-touch
    // page faults for its scratch copy; without this the second timed
    // run would win on warm pages, not on algorithm.
    GZ_CHECK(!Connectivity(snapshot, 1).failed);

    WallTimer seq_timer;
    const ConnectivityResult seq = Connectivity(snapshot, 1);
    const double boruvka_1t_s = seq_timer.Seconds();
    GZ_CHECK(!seq.failed);

    WallTimer par_timer;
    const ConnectivityResult par = Connectivity(snapshot, par_threads);
    const double boruvka_par_s = par_timer.Seconds();
    // Determinism contract: identical spanning forest, bit for bit.
    GZ_CHECK(!par.failed);
    GZ_CHECK(par.spanning_forest == seq.spanning_forest);
    GZ_CHECK(par.component_of == seq.component_of);

    const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
    std::printf(
        "  {\"v\": %llu, \"edges\": %zu, \"rounds\": %d,\n"
        "   \"snapshot_s\": %.4f, \"merge_s\": %.4f,\n"
        "   \"serialize_s\": %.4f, \"deserialize_s\": %.4f,\n"
        "   \"snapshot_mb\": %.1f, \"serialize_mb_per_s\": %.0f,\n"
        "   \"boruvka_1t_s\": %.4f, \"boruvka_par_s\": %.4f,\n"
        "   \"par_threads\": %d, \"speedup\": %.2f}%s\n",
        static_cast<unsigned long long>(n), edges.size(), snapshot.rounds(),
        snapshot_s, merge_s, serialize_s, deserialize_s, mb,
        serialize_s > 0 ? mb / serialize_s : 0.0, boruvka_1t_s,
        boruvka_par_s, par_threads,
        boruvka_par_s > 0 ? boruvka_1t_s / boruvka_par_s : 0.0,
        ",");
  }

  // ---- Serving tier ---------------------------------------------------------
  // Two phases, one JSON object (always the array's last element):
  //   (a) the coordinator's SnapshotCache — cold build vs cached hit vs
  //       a full re-fold, bitwise-checked and with the ISSUE's "cached
  //       >= 10x faster than re-fold" floor enforced;
  //   (b) a loopback-TCP listener fleet with QuerySession readers —
  //       quiesced query qps/p50/p99 and the writer's ingest rate with
  //       readers polling, at 1/4/16 readers, vs a no-reader baseline.
  {
    const int logv = bench::GetEnvInt("GZ_BENCH_SERVING_LOGV", 11);
    const int ingest_ms = bench::GetEnvInt("GZ_BENCH_SERVING_MS", 250);
    const int queries = bench::GetEnvInt("GZ_BENCH_SERVING_QUERIES", 25);
    // Per-reader staleness-poll cadence during the ingest windows.
    // 100 Hz per reader is an aggressive dashboard; 0 = unpaced torture
    // loop (measures sweep saturation, not representative load).
    const int poll_ms = bench::GetEnvInt("GZ_BENCH_SERVING_POLL_MS", 10);
    const uint64_t n = 1ULL << logv;
    const int kShards = 3;
    std::fprintf(stderr,
                 "serving bench: V = 2^%d, %d shards, %d ms ingest windows\n",
                 logv, kShards, ingest_ms);

    const EdgeList edges = RandomConnectedGraph(n, 4 * n, 4242);
    std::vector<GraphUpdate> updates;
    updates.reserve(edges.size());
    for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});

    // (a) Cache economics, in-process (no transport noise in the ratio).
    double cold_s = 0, cached_s = 0, refold_s = 0;
    {
      GraphZeppelinConfig config = bench::DefaultGzConfig();
      config.num_nodes = n;
      ShardedGraphZeppelin sharded(config, kShards);
      GZ_CHECK_OK(sharded.Init());
      sharded.Update(updates.data(), updates.size());
      sharded.Flush();

      const GraphSnapshot* cached = nullptr;
      WallTimer cold_timer;
      GZ_CHECK_OK(sharded.CachedSnapshot(&cached));
      cold_s = cold_timer.Seconds();

      const int refolds = 5;
      WallTimer refold_timer;
      GraphSnapshot full = sharded.Snapshot();
      for (int i = 1; i < refolds; ++i) full = sharded.Snapshot();
      refold_s = refold_timer.Seconds() / refolds;

      const int reps = 50;
      WallTimer cached_timer;
      for (int i = 0; i < reps; ++i) {
        GZ_CHECK_OK(sharded.CachedSnapshot(&cached));
      }
      cached_s = cached_timer.Seconds() / reps;

      GZ_CHECK(*cached == full);
      GZ_CHECK(sharded.snapshot_cache().cold_builds() == 1);
      // The serving tier's reason to exist; regressing this means a
      // cached hit re-folded.
      GZ_CHECK(cached_s * 10.0 <= refold_s);
    }

    // (b) TCP fleet. 16 readers + the writer + a pin session exceed the
    // listener's default session budget, so raise it for the children.
    const std::string kSecret = "bench-serving";
    ::setenv("GZ_SHARD_MAX_SESSIONS", "40", 1);
    std::vector<std::unique_ptr<ListenerShard>> listeners;
    std::vector<std::string> fleet;
    const std::string scratch = bench::TempDir();
    GZ_CHECK_OK(StartListenerShards(DefaultShardBinary(), kShards, scratch,
                                    scratch + "/gz_bench_serving_l", kSecret,
                                    &listeners, &fleet));
    ::unsetenv("GZ_SHARD_MAX_SESSIONS");

    GraphZeppelinConfig tcp_config = bench::DefaultGzConfig();
    // Two spare nodes host the standing-query probe edge: outside the
    // random graph, connected only by the probe itself, so every
    // toggle flips the watched answer deterministically.
    tcp_config.num_nodes = n + 2;
    ShardClusterOptions copts;
    copts.auth_secret = kSecret;
    copts.shard_endpoints = fleet;
    // Steady-state routing throughput is the measurement; an
    // auto-checkpoint barrier landing inside a timed window is not.
    copts.checkpoint_interval_updates = 0;
    ShardCluster cluster(tcp_config, kShards, copts);
    GZ_CHECK_OK(cluster.Start());
    const size_t half = updates.size() / 2;
    GZ_CHECK_OK(cluster.Update(updates.data(), half));
    GZ_CHECK_OK(cluster.Flush());

    QuerySessionOptions qopts;
    qopts.endpoints = fleet;
    qopts.auth_secret = kSecret;

    // Bitwise pin before any timing: a reader session serves exactly
    // the coordinator's fold.
    {
      QuerySession pin(qopts);
      GZ_CHECK_OK(pin.Connect());
      const GraphSnapshot* served = nullptr;
      GZ_CHECK_OK(pin.Snapshot(&served));
      Result<GraphSnapshot> full = cluster.Snapshot();
      GZ_CHECK(full.ok());
      GZ_CHECK(*served == full.value());
    }

    // Ingest windows recycle the second half of the stream in bursts
    // (sketch updates are XOR toggles, so replays are fine — only the
    // routed-update rate matters here).
    // One ingest window: bursts of kBurst updates, paced to `target`
    // updates/s (0 = unthrottled). Returns the achieved rate.
    const size_t kBurst = 512;
    size_t cursor = half;
    auto ingest_window = [&](int ms, double target) {
      WallTimer t;
      uint64_t sent = 0;
      while (t.Seconds() * 1000.0 < ms) {
        if (cursor >= updates.size()) cursor = half;
        const size_t take = std::min(kBurst, updates.size() - cursor);
        GZ_CHECK_OK(cluster.Update(updates.data() + cursor, take));
        cursor += take;
        sent += take;
        if (target > 0) {
          const double ahead =
              static_cast<double>(sent) / target - t.Seconds();
          if (ahead > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ahead));
          }
        }
      }
      return static_cast<double>(sent) / t.Seconds();
    };
    // Every measured window is preceded by an unmeasured warmup window
    // with NO flush in between: the warmup fills the socket buffers and
    // shard queues to their backpressure equilibrium, so the window
    // measures steady-state routing throughput, not a burst into empty
    // buffers.
    auto steady_rate = [&](double target) {
      (void)ingest_window(ingest_ms / 2, target);
      return ingest_window(ingest_ms, target);
    };
    // Unthrottled capacity first; the impact windows then pace the
    // writer at half of it. An unthrottled writer on a small machine
    // saturates every core, so readers would measure CPU division, not
    // serving overhead — the question a deployment asks is whether
    // readers make a writer WITH HEADROOM miss its provisioned rate.
    const double capacity_rate = steady_rate(0);
    const double target_rate = capacity_rate / 2;
    GZ_CHECK_OK(cluster.Flush());

    struct ReaderPoint {
      int readers;
      double qps, p50_ms, p99_ms, poll_rate, ingest_rate, ingest_ratio;
    };
    std::vector<ReaderPoint> points;
    for (const int readers : {1, 4, 16}) {
      // Quiesced latency: each reader warms its session cache once
      // (untimed cold pull), then times cache-hit round trips — the
      // steady state a dashboard poller lives in.
      std::vector<std::vector<double>> lat(readers);
      {
        std::vector<std::thread> threads;
        for (int r = 0; r < readers; ++r) {
          threads.emplace_back([&, r] {
            QuerySession session(qopts);
            GZ_CHECK_OK(session.Connect());
            const GraphSnapshot* snap = nullptr;
            GZ_CHECK_OK(session.Snapshot(&snap));
            lat[r].reserve(queries);
            for (int q = 0; q < queries; ++q) {
              WallTimer qt;
              GZ_CHECK_OK(session.Snapshot(&snap));
              lat[r].push_back(qt.Seconds());
            }
          });
        }
        for (auto& t : threads) t.join();
      }
      // Aggregate throughput from the timed loops only — connect and
      // the cold warmup pull are session setup, not serving rate.
      double qps = 0.0;
      std::vector<double> all;
      for (auto& v : lat) {
        double busy = 0.0;
        for (double s : v) busy += s;
        if (busy > 0) qps += static_cast<double>(v.size()) / busy;
        all.insert(all.end(), v.begin(), v.end());
      }

      // Ingest impact: stale-serving readers. Each refreshes once while
      // the cluster is quiesced, signals ready, then polls the cluster
      // position in a tight loop while the writer streams — the
      // shard-side read load a dashboard fleet imposes between
      // refreshes. (A content refresh against a continuously moving
      // writer re-pulls every shard's full range; that measures bulk
      // transfer, not reader overhead, so it is not in this loop.)
      // Solo and loaded windows alternate (pollers pause for the solo
      // ones) and the pairs are averaged: back-to-back interleaving
      // cancels the scheduler drift that would otherwise dominate the
      // ratio when the whole fleet timeshares a small machine.
      GZ_CHECK_OK(cluster.Flush());
      std::atomic<bool> stop{false};
      std::atomic<bool> pause{true};
      std::atomic<int> ready{0};
      std::atomic<uint64_t> polls{0};
      std::vector<std::thread> pollers;
      for (int r = 0; r < readers; ++r) {
        pollers.emplace_back([&] {
          QuerySession session(qopts);
          GZ_CHECK_OK(session.Connect());
          const GraphSnapshot* snap = nullptr;
          GZ_CHECK_OK(session.Snapshot(&snap));  // Quiesced warm refresh.
          ready.fetch_add(1);
          bool fresh = false;
          while (!stop.load(std::memory_order_relaxed)) {
            if (pause.load(std::memory_order_relaxed)) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              continue;
            }
            GZ_CHECK_OK(session.PollPositions(&fresh));
            polls.fetch_add(1, std::memory_order_relaxed);
            if (poll_ms > 0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
            }
          }
        });
      }
      while (ready.load() < readers) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const int pairs = bench::GetEnvInt("GZ_BENCH_SERVING_WINDOWS", 3);
      double solo_rate = 0, loaded_rate = 0, window_s = 0;
      for (int w = 0; w < pairs; ++w) {
        pause.store(true);
        solo_rate += steady_rate(target_rate);
        pause.store(false);
        WallTimer window_timer;
        loaded_rate += steady_rate(target_rate);
        window_s += window_timer.Seconds();
      }
      stop.store(true);
      for (auto& t : pollers) t.join();
      solo_rate /= pairs;
      loaded_rate /= pairs;

      points.push_back(
          {readers, qps, 1e3 * Percentile(&all, 0.50),
           1e3 * Percentile(&all, 0.99),
           window_s > 0 ? static_cast<double>(polls.load()) / window_s : 0.0,
           loaded_rate, solo_rate > 0 ? loaded_rate / solo_rate : 0.0});
    }
    std::printf(
        "  {\"serving\": {\"v\": %llu, \"shards\": %d,\n"
        "   \"cold_refresh_s\": %.6f, \"cached_s\": %.9f,\n"
        "   \"refold_s\": %.6f, \"cached_speedup\": %.1f,\n"
        "   \"ingest_capacity_updates_per_s\": %.0f,\n"
        "   \"ingest_target_updates_per_s\": %.0f,\n"
        "   \"readers\": [",
        static_cast<unsigned long long>(n), kShards, cold_s, cached_s,
        refold_s, cached_s > 0 ? refold_s / cached_s : 0.0, capacity_rate,
        target_rate);
    for (size_t i = 0; i < points.size(); ++i) {
      const ReaderPoint& p = points[i];
      std::printf(
          "\n    {\"readers\": %d, \"qps\": %.0f, \"p50_ms\": %.3f, "
          "\"p99_ms\": %.3f, \"polls_per_s\": %.0f, "
          "\"ingest_updates_per_s\": %.0f, \"ingest_ratio\": %.3f}%s",
          p.readers, p.qps, p.p50_ms, p.p99_ms, p.poll_rate, p.ingest_rate,
          p.ingest_ratio, i + 1 < points.size() ? "," : "");
    }
    std::printf("],\n");

    // ---- Standing-query watch ---------------------------------------
    // Notification latency: a kConnected standing query on the probe
    // edge, toggled by the otherwise-quiesced writer. The sample is
    // Update() -> the notifier firing with the flipped answer, so it
    // covers the full path: shard position push (or cadence poll),
    // delta refresh, the fold, and the answer diff. Push subscriptions
    // vs pure polling at the same cadence.
    const int toggles = bench::GetEnvInt("GZ_BENCH_WATCH_TOGGLES", 20);
    const int watch_poll_ms = bench::GetEnvInt("GZ_BENCH_WATCH_POLL_MS", 200);
    const Edge probe(static_cast<NodeId>(n), static_cast<NodeId>(n + 1));
    GZ_CHECK_OK(cluster.Flush());
    struct WatchLatency {
      double p50_ms = 0, p99_ms = 0;
    };
    WatchLatency push_lat, poll_lat;
    bool probe_in = false;
    for (const bool subscribe : {true, false}) {
      QuerySession session(qopts);
      GZ_CHECK_OK(session.Connect());
      session.AddStandingQuery(
          {StandingQueryKind::kConnected, probe.u, probe.v});
      std::mutex mu;
      std::condition_variable cv;
      bool last_connected = false;
      uint64_t notes = 0;
      StandingWatchOptions wopts;
      wopts.poll_interval_ms = watch_poll_ms;
      wopts.subscribe = subscribe;
      GZ_CHECK_OK(session.StartWatch(
          wopts,
          [&](const StandingQueryNotification& nn, const GraphSnapshot&) {
            std::lock_guard<std::mutex> lock(mu);
            last_connected = nn.answer.connected;
            ++notes;
            cv.notify_all();
          }));
      {
        std::unique_lock<std::mutex> lock(mu);
        GZ_CHECK(cv.wait_for(lock, std::chrono::seconds(30),
                             [&] { return notes >= 1; }));
      }
      std::vector<double> lat;
      lat.reserve(toggles);
      for (int i = 0; i < toggles; ++i) {
        const GraphUpdate u{
            probe, probe_in ? UpdateType::kDelete : UpdateType::kInsert};
        probe_in = !probe_in;
        WallTimer toggle_timer;
        GZ_CHECK_OK(cluster.Update(&u, 1));
        std::unique_lock<std::mutex> lock(mu);
        GZ_CHECK(cv.wait_for(lock, std::chrono::seconds(30),
                             [&] { return last_connected == probe_in; }));
        lat.push_back(toggle_timer.Seconds());
      }
      session.StopWatch();
      WatchLatency& out = subscribe ? push_lat : poll_lat;
      out.p50_ms = 1e3 * Percentile(&lat, 0.50);
      out.p99_ms = 1e3 * Percentile(&lat, 0.99);
    }

    // Ingest impact of live subscriptions: 16 sessions, each holding a
    // component-count standing query over push notify streams,
    // re-folding as the writer streams — the heaviest continuous-query
    // fleet the serving tier is specified for. Solo/loaded window
    // pairs as above; the watchers are torn down for the solo half of
    // each pair, so the drift-cancelling alternation is preserved.
    const int kWatchers = 16;
    double watch_solo = 0, watch_loaded = 0;
    {
      const int pairs = bench::GetEnvInt("GZ_BENCH_SERVING_WINDOWS", 3);
      for (int w = 0; w < pairs; ++w) {
        watch_solo += steady_rate(target_rate);
        std::vector<std::unique_ptr<QuerySession>> watchers;
        for (int r = 0; r < kWatchers; ++r) {
          watchers.push_back(std::make_unique<QuerySession>(qopts));
          GZ_CHECK_OK(watchers.back()->Connect());
          watchers.back()->AddStandingQuery(
              {StandingQueryKind::kComponentCount, 0, 0});
          StandingWatchOptions wopts;
          wopts.poll_interval_ms = watch_poll_ms;
          GZ_CHECK_OK(watchers.back()->StartWatch(
              wopts,
              [](const StandingQueryNotification&, const GraphSnapshot&) {}));
        }
        watch_loaded += steady_rate(target_rate);
        for (auto& watcher : watchers) watcher->StopWatch();
      }
      watch_solo /= pairs;
      watch_loaded /= pairs;
    }
    GZ_CHECK_OK(cluster.Shutdown());

    std::printf(
        "   \"watch\": {\"toggles\": %d, \"poll_ms\": %d,\n"
        "    \"push_p50_ms\": %.3f, \"push_p99_ms\": %.3f,\n"
        "    \"poll_p50_ms\": %.3f, \"poll_p99_ms\": %.3f,\n"
        "    \"subscribers\": %d, \"ingest_updates_per_s\": %.0f, "
        "\"ingest_ratio\": %.3f}}}\n",
        toggles, watch_poll_ms, push_lat.p50_ms, push_lat.p99_ms,
        poll_lat.p50_ms, poll_lat.p99_ms, kWatchers, watch_loaded,
        watch_solo > 0 ? watch_loaded / watch_solo : 0.0);
  }
  std::printf("]\n");
  return 0;
}
