// Sketch-kernel microbench: updates/sec per kernel (scalar vs AVX2 vs
// AVX-512), per-column hash throughput, and an ingest-shaped
// NodeSketch row. Emits one JSON object so BENCH_*.json trajectories
// can track the kernel across builds.
//
// Every SIMD result is GZ_CHECK'd bitwise-identical to the scalar
// sketch before its timing is reported — a wrong fast kernel must
// never publish a number. On multi-core AVX2 hardware the acceptance
// gate is best-kernel >= 1.5x scalar; on the 1-CPU CI container the
// gate is no-regression (same precedent as bench_query's parallel
// target).
//
// Env knobs: GZ_BENCH_SK_BATCH (default 4096 indices per batch),
// GZ_BENCH_SK_ITERS (default 400 batches per kernel).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sketch/cube_sketch.h"
#include "sketch/node_sketch.h"
#include "sketch/sketch_kernel.h"
#include "util/random.h"
#include "util/xxhash.h"

int main() {
  using namespace gz;
  const size_t batch = bench::GetEnvInt("GZ_BENCH_SK_BATCH", 4096);
  const int iters = bench::GetEnvInt("GZ_BENCH_SK_ITERS", 400);
  const uint64_t num_nodes = 1 << 17;
  // Same edge-index domain for the cube and node rows, so one index
  // stream drives both.
  const uint64_t vector_len = NumPossibleEdges(num_nodes);
  const uint64_t seed = 42;

  std::vector<SketchKernel> kernels = {SketchKernel::kScalar};
  if (SketchKernelSupported(SketchKernel::kAvx2)) {
    kernels.push_back(SketchKernel::kAvx2);
  }
  if (SketchKernelSupported(SketchKernel::kAvx512)) {
    kernels.push_back(SketchKernel::kAvx512);
  }

  SplitMix64 rng(7);
  std::vector<uint64_t> indices(batch);
  for (uint64_t& idx : indices) idx = rng.NextBelow(vector_len);

  CubeSketchParams cp;
  cp.vector_len = vector_len;
  cp.seed = seed;

  // Reference sketch for the bitwise gate.
  CubeSketch reference(cp);
  for (int it = 0; it < iters; ++it) {
    reference.UpdateBatchWithKernel(SketchKernel::kScalar, indices.data(),
                                    batch);
  }

  struct Row {
    SketchKernel kernel;
    double cube_updates_per_sec = 0;
    double node_updates_per_sec = 0;
    double hash_mhashes_per_sec = 0;
  };
  std::vector<Row> rows;

  NodeSketchParams np;
  np.num_nodes = num_nodes;
  np.seed = seed;
  std::vector<uint64_t> hash_out(batch);

  for (SketchKernel k : kernels) {
    Row row;
    row.kernel = k;

    // Cube-sketch update throughput (the tentpole number).
    CubeSketch sketch(cp);
    WallTimer cube_timer;
    for (int it = 0; it < iters; ++it) {
      sketch.UpdateBatchWithKernel(k, indices.data(), batch);
    }
    const double cube_s = std::max(cube_timer.Seconds(), 1e-9);
    row.cube_updates_per_sec =
        static_cast<double>(batch) * iters / cube_s;
    GZ_CHECK_MSG(sketch == reference,
                 "kernel diverged from scalar; refusing to report timing");

    // Ingest-shaped: one NodeSketch (all rounds) through the forced
    // kernel, exactly what a Graph Worker's delta sketch does.
    ForceSketchKernel(k);
    NodeSketch node(np);
    const int node_iters = std::max(1, iters / 8);
    WallTimer node_timer;
    for (int it = 0; it < node_iters; ++it) {
      node.UpdateBatch(indices.data(), batch);
    }
    const double node_s = std::max(node_timer.Seconds(), 1e-9);
    row.node_updates_per_sec =
        static_cast<double>(batch) * node_iters / node_s;

    // Raw per-column hash throughput (millions of XxHash64Word/s).
    WallTimer hash_timer;
    for (int it = 0; it < iters * 4; ++it) {
      XxHash64WordBatch(k, indices.data(), batch, seed + it, hash_out.data());
    }
    const double hash_s = std::max(hash_timer.Seconds(), 1e-9);
    row.hash_mhashes_per_sec =
        static_cast<double>(batch) * iters * 4 / hash_s / 1e6;

    rows.push_back(row);
  }
  ForceSketchKernel(BestSupportedSketchKernel());

  const Row& scalar = rows.front();
  const Row* best = &rows.front();
  for (const Row& r : rows) {
    if (r.cube_updates_per_sec > best->cube_updates_per_sec) best = &r;
  }

  std::printf("{\n  \"bench\": \"sketch_kernel\",\n");
  std::printf("  \"vector_len\": %llu, \"cols\": %d, \"rows\": %d, "
              "\"batch\": %zu, \"iters\": %d,\n",
              static_cast<unsigned long long>(vector_len), cp.cols,
              CubeSketch(cp).rows(), batch, iters);
  std::printf("  \"kernels\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("    {\"kernel\": \"%s\", \"cube_updates_per_sec\": %.0f, "
                "\"node_updates_per_sec\": %.0f, "
                "\"hash_mhashes_per_sec\": %.1f, "
                "\"speedup_vs_scalar\": %.3f}%s\n",
                SketchKernelName(r.kernel), r.cube_updates_per_sec,
                r.node_updates_per_sec, r.hash_mhashes_per_sec,
                r.cube_updates_per_sec / scalar.cube_updates_per_sec,
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"best_kernel\": \"%s\", \"best_speedup_vs_scalar\": %.3f\n",
              SketchKernelName(best->kernel),
              best->cube_updates_per_sec / scalar.cube_updates_per_sec);
  std::printf("}\n");
  return 0;
}
