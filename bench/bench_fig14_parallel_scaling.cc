// Figure 14: ingestion rate vs number of Graph Worker threads.
//
// Paper shape to reproduce: near-linear scaling with workers (26x at 46
// threads on a 24-core machine). NOTE: this environment exposes a
// single CPU core, so the curve here shows the *overhead* profile of
// batch-level parallelism rather than speedup; run on a multicore box
// (GZ_BENCH_WORKERS_MAX) to see the paper's scaling.
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 14", "ingestion rate vs Graph Workers");
  std::printf("(hardware threads available: %u)\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %10s %14s %10s\n", "Dataset", "Workers", "Updates/s",
              "Speedup");

  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);
  const int max_workers = bench::GetEnvInt("GZ_BENCH_WORKERS_MAX", 8);

  double base_rate = 0;
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_workers = workers;
    const bench::IngestResult result = bench::RunGraphZeppelin(w, config);
    if (workers == 1) base_rate = result.updates_per_sec;
    std::printf("%-8s %10d %14.0f %9.2fx\n", w.name.c_str(), workers,
                result.updates_per_sec,
                result.updates_per_sec / base_rate);
  }
  return 0;
}
