// Figure 16a/b: connectivity-query latency at checkpoints every 10% of
// the stream, in-RAM (16a) and with GraphZeppelin's sketches on disk
// (16b).
//
// Paper shape to reproduce: explicit baselines answer quickly while the
// graph is sparse but their query time grows with density; sketch query
// time is density-independent (flat across checkpoints).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/timer.h"

namespace gz {
namespace {

struct LatencySeries {
  std::vector<double> seconds;
};

// Runs the stream with queries every 10%, returning per-checkpoint
// query latencies for one GraphZeppelin configuration.
LatencySeries RunGzWithCheckpoints(const bench::Workload& w,
                                   GraphZeppelinConfig config) {
  config.num_nodes = w.num_nodes;
  GraphZeppelin gz(config);
  GZ_CHECK_OK(gz.Init());
  LatencySeries series;
  const size_t total = w.stream.updates.size();
  size_t consumed = 0;
  size_t next_checkpoint = total / 10;
  for (const GraphUpdate& u : w.stream.updates) {
    gz.Update(u);
    ++consumed;
    if (consumed >= next_checkpoint) {
      WallTimer timer;
      const ConnectivityResult r = gz.ListSpanningForest();
      GZ_CHECK(!r.failed);
      series.seconds.push_back(timer.Seconds());
      next_checkpoint += total / 10;
    }
  }
  return series;
}

template <typename GraphT>
LatencySeries RunBaselineWithCheckpoints(const bench::Workload& w,
                                         GraphT* graph) {
  LatencySeries series;
  const size_t total = w.stream.updates.size();
  size_t consumed = 0;
  size_t next_checkpoint = total / 10;
  for (const GraphUpdate& u : w.stream.updates) {
    graph->Update(u);
    ++consumed;
    if (consumed >= next_checkpoint) {
      WallTimer timer;
      (void)graph->ConnectedComponents();
      series.seconds.push_back(timer.Seconds());
      next_checkpoint += total / 10;
    }
  }
  return series;
}

void PrintSeries(const char* name, const LatencySeries& s) {
  std::printf("%-16s", name);
  for (double sec : s.seconds) std::printf(" %8.4f", sec);
  std::printf("\n");
}

}  // namespace
}  // namespace gz

int main() {
  using namespace gz;
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);

  bench::PrintHeader("Figure 16a",
                     "query latency every 10% of stream, in RAM (s)");
  std::printf("%-16s", "stream position");
  for (int pct = 10; pct <= 100; pct += 10) std::printf("   %5d%%", pct);
  std::printf("\n");

  {
    CsrBatchGraph aspen_like(w.num_nodes, 1 << 16);
    PrintSeries("Aspen-like", RunBaselineWithCheckpoints(w, &aspen_like));
    HashAdjacencyGraph terrace_like(w.num_nodes);
    PrintSeries("Terrace-like",
                RunBaselineWithCheckpoints(w, &terrace_like));
    // Paper 16a: GraphZeppelin with small (100-update) buffers.
    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.gutter_fraction = 0.002;  // A few hundred bytes per gutter.
    PrintSeries("GraphZeppelin", RunGzWithCheckpoints(w, config));
  }

  bench::PrintHeader("Figure 16b",
                     "query latency every 10%, GZ sketches on disk (s)");
  {
    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.storage = GraphZeppelinConfig::Storage::kDisk;
    config.gutter_fraction = 0.1;  // Paper: one-tenth of sketch size.
    PrintSeries("GraphZeppelin", RunGzWithCheckpoints(w, config));
  }
  std::printf(
      "\nShape check vs paper: baseline query time climbs as the graph\n"
      "densifies; GraphZeppelin's stays flat across checkpoints.\n");
  return 0;
}
