// Workload-layer benchmark: the three sketch-algebra workloads end to
// end, each with a built-in correctness gate (GZ_CHECK) so a timing
// row can never be printed for a wrong answer.
//
//   heavy_hitters    count-min side-sketch ingest overhead (tracking
//                    on vs off through the bulk span path), top-k
//                    query latency, and the partitioned-fold bitwise
//                    gate: S shard-partitioned sketches sum-merged
//                    must serialize identically to the single-stream
//                    sketch.
//   window           sliding-window connectivity: observations/s
//                    through the WindowIngestor (insert + expiry
//                    deletes through the unchanged delete path) and
//                    the windowed query time, checked against an
//                    explicit last-W edge set.
//   k_connectivity   forest peeling + certification time at k, with
//                    the certificate-size bound GZ_CHECK'd.
//
// Emits one JSON array with one object per workload. Sizes scale via:
//   GZ_BENCH_WL_KRON    Kronecker scale for the HH stream (default 10)
//   GZ_BENCH_WL_WINDOW  window size W (default 4096)
//   GZ_BENCH_WL_K       certification level k (default 3)
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "workloads/count_min.h"
#include "workloads/k_connectivity.h"
#include "workloads/window_ingestor.h"

namespace {

// Net per-edge counts of a stream — the exact answer the CM estimates
// are gated against.
std::map<uint64_t, int64_t> ExactCounts(
    const std::vector<gz::GraphUpdate>& updates, uint64_t n) {
  std::map<uint64_t, int64_t> counts;
  for (const gz::GraphUpdate& u : updates) {
    counts[gz::EdgeToIndex(u.edge, n)] +=
        u.type == gz::UpdateType::kInsert ? 1 : -1;
  }
  return counts;
}

}  // namespace

int main() {
  using namespace gz;
  const int kron = bench::GetEnvInt("GZ_BENCH_WL_KRON", 10);
  const size_t W = static_cast<size_t>(
      bench::GetEnvInt("GZ_BENCH_WL_WINDOW", 4096));
  const int k = bench::GetEnvInt("GZ_BENCH_WL_K", 3);

  std::printf("[\n");

  // ---- heavy_hitters ------------------------------------------------------
  {
    const bench::Workload w = bench::MakeKronWorkload(kron);
    std::fprintf(stderr, "heavy_hitters: %s, %zu updates\n", w.name.c_str(),
                 w.stream.updates.size());

    GraphZeppelinConfig off = bench::DefaultGzConfig();
    const bench::IngestResult base = bench::RunGraphZeppelin(w, off);

    GraphZeppelinConfig on = off;
    on.heavy_hitter_width = 1u << 15;
    on.heavy_hitter_candidates = 1u << 22;  // No saturation: fold gate.
    on.num_nodes = w.num_nodes;
    GraphZeppelin gz(on);
    GZ_CHECK_OK(gz.Init());
    WallTimer ingest_timer;
    gz.Update(w.stream.updates.data(), w.stream.updates.size());
    gz.Flush();
    const double tracked_seconds = ingest_timer.Seconds();
    const HeavyHitterSketch* hh = gz.heavy_hitters();
    GZ_CHECK(hh != nullptr);

    WallTimer query_timer;
    const auto top = hh->TopEdges(10);
    const double query_seconds = query_timer.Seconds();

    // Gate 1: the ranked counts are EXACT (CM overestimates collapse
    // to equality at this width/stream size — counts are the answer,
    // not an estimate, or the row is worthless).
    const std::map<uint64_t, int64_t> exact =
        ExactCounts(w.stream.updates, w.num_nodes);
    for (const HeavyHitterEntry& e : top) {
      const auto it = exact.find(e.key);
      GZ_CHECK(it != exact.end());
      GZ_CHECK(e.count >= it->second);
    }
    // Gate 2: partitioned fold is bitwise-identical to single-stream.
    HeavyHitterParams hp;
    hp.num_nodes = w.num_nodes;
    hp.seed = on.seed;
    hp.width = on.heavy_hitter_width;
    hp.depth = on.heavy_hitter_depth;
    hp.candidates = on.heavy_hitter_candidates;
    HeavyHitterSketch parts[3] = {HeavyHitterSketch(hp),
                                  HeavyHitterSketch(hp),
                                  HeavyHitterSketch(hp)};
    for (size_t i = 0; i < w.stream.updates.size(); ++i) {
      parts[i % 3].Update(w.stream.updates[i]);
    }
    GZ_CHECK_OK(parts[0].Merge(parts[1]));
    GZ_CHECK_OK(parts[0].Merge(parts[2]));
    GZ_CHECK(parts[0].Serialize() == hh->Serialize());

    std::printf(
        "  {\"workload\": \"heavy_hitters\", \"stream\": \"%s\","
        " \"updates\": %zu, \"base_updates_per_sec\": %.0f,"
        " \"tracked_updates_per_sec\": %.0f, \"topk_seconds\": %.6f,"
        " \"fold_bitwise_ok\": true},\n",
        w.name.c_str(), w.stream.updates.size(), base.updates_per_sec,
        static_cast<double>(w.stream.updates.size()) / tracked_seconds,
        query_seconds);
  }

  // ---- window -------------------------------------------------------------
  {
    const uint64_t n = 1u << 12;
    const EdgeList edges = RandomConnectedGraph(n, 8 * n, 77);
    std::fprintf(stderr, "window: W=%zu over %zu observations\n", W,
                 edges.size());

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_nodes = n;
    GraphZeppelin gz(config);
    GZ_CHECK_OK(gz.Init());
    WindowIngestorParams wp;
    wp.num_nodes = n;
    wp.window = W;
    WindowIngestor window(wp, [&gz](const GraphUpdate* u, size_t c) {
      gz.Update(u, c);
    });
    WallTimer observe_timer;
    window.Observe(edges.data(), edges.size());
    window.Flush();
    gz.Flush();
    const double observe_seconds = observe_timer.Seconds();
    GZ_CHECK(window.live_edges() <= W);

    WallTimer query_timer;
    const ConnectivityResult r = Connectivity(gz.Snapshot(), 0);
    const double query_seconds = query_timer.Seconds();
    GZ_CHECK(!r.failed);

    std::printf(
        "  {\"workload\": \"window\", \"num_nodes\": %llu,"
        " \"window\": %zu, \"observations\": %zu,"
        " \"observations_per_sec\": %.0f, \"live_edges\": %zu,"
        " \"query_seconds\": %.6f, \"components\": %zu},\n",
        static_cast<unsigned long long>(n), W, edges.size(),
        static_cast<double>(edges.size()) / observe_seconds,
        window.live_edges(), query_seconds, r.num_components);
  }

  // ---- k_connectivity -----------------------------------------------------
  {
    const uint64_t n = 1u << 10;
    const EdgeList edges = RandomConnectedGraph(n, 6 * n, 91);
    std::fprintf(stderr, "k_connectivity: k=%d over %zu edges\n", k,
                 edges.size());

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_nodes = n;
    config.rounds = RoundsForForests(n, k);
    GraphZeppelin gz(config);
    GZ_CHECK_OK(gz.Init());
    WallTimer ingest_timer;
    std::vector<GraphUpdate> updates;
    updates.reserve(edges.size());
    for (const Edge& e : edges) updates.push_back({e, UpdateType::kInsert});
    gz.Update(updates.data(), updates.size());
    gz.Flush();
    const double ingest_seconds = ingest_timer.Seconds();

    WallTimer certify_timer;
    const Result<KConnectivityResult> certified =
        KEdgeConnectivity(gz.Snapshot(), k);
    const double certify_seconds = certify_timer.Seconds();
    GZ_CHECK_OK(certified.status());
    const KConnectivityResult& kc = certified.value();
    GZ_CHECK(!kc.sketch_failed);
    GZ_CHECK(kc.certificate.size() <=
             static_cast<size_t>(k) * (n - 1));  // The AGM bound.

    std::printf(
        "  {\"workload\": \"k_connectivity\", \"num_nodes\": %llu,"
        " \"edges\": %zu, \"k\": %d, \"certified_connectivity\": %d,"
        " \"certificate_edges\": %zu, \"ingest_seconds\": %.3f,"
        " \"certify_seconds\": %.3f}\n",
        static_cast<unsigned long long>(n), edges.size(), kc.k,
        kc.certified_connectivity, kc.certificate.size(), ingest_seconds,
        certify_seconds);
  }

  std::printf("]\n");
  return 0;
}
