// Extension bench (paper Section 8): sharded ingestion. Sketch
// linearity lets shards ingest disjoint stream partitions with zero
// coordination; a query XORs shard snapshots node-wise.
//
// Three execution modes run per shard count: in-process shard
// instances (routing + per-shard pipelines + in-place merge), real
// gz_shard worker processes over socketpairs (the same routing, plus
// socket framing, and a query-time aggregation of serialized
// GraphSnapshot bytes), and listener-mode gz_shards dialed over
// loopback TCP with an authenticated handshake — the full tcp://
// transport column, so BENCH trajectories track the framing, checksum
// AND network-stack overhead directly. Each process/tcp row also
// reports the measured CRC32C throughput and the estimated share of
// ingest wall time the v3 per-frame checksum costs over v2 framing
// (v2 shipped the same bytes unchecksummed, so the delta is exactly
// one CRC pass over the frame bytes on each side). GZ_BENCH_SHARDS_MAX
// caps the shard-count sweep (CI smokes with 2). On this container's
// single core the per-shard pipelines add overhead; with real
// cores/machines per shard, rates multiply (paper Section 8).
// With --rebalance, a second benchmark runs instead: elastic reshard
// operations (split, then remove) fire while the stream is flowing,
// and the JSON reports the migration wall time plus the worst
// per-burst update latency during the migration vs the steady-state
// baseline — the "rebalance under load" column. A stall-free reshard
// keeps the two latencies in the same ballpark; a flush-barrier design
// would spike the migration column by the whole shard drain time.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "distributed/shard_transport.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace {

using gz::ShardedGraphZeppelin;
using Mode = ShardedGraphZeppelin::Mode;

// The transport column: in-process, worker processes over socketpairs,
// or listener-mode worker processes over loopback TCP (+ handshake).
enum class BenchMode { kInProcess, kProcess, kProcessTcp };

constexpr char kBenchSecret[] = "bench-secret";

const char* BenchModeName(BenchMode mode) {
  switch (mode) {
    case BenchMode::kInProcess:
      return "in_process";
    case BenchMode::kProcess:
      return "process";
    default:
      return "tcp";
  }
}

Mode ExecMode(BenchMode mode) {
  return mode == BenchMode::kInProcess ? Mode::kInProcess : Mode::kProcess;
}

// Stands up `shards` listener-mode gz_shards and returns options
// dialing them (TCP mode), or leaves the options untouched.
gz::ShardClusterOptions OptionsFor(
    BenchMode mode, int shards,
    std::vector<std::unique_ptr<gz::ListenerShard>>* listeners,
    gz::ShardClusterOptions options = {}) {
  if (mode != BenchMode::kProcessTcp) return options;
  options.auth_secret = kBenchSecret;
  GZ_CHECK_OK(gz::StartListenerShards(
      gz::DefaultShardBinary(), shards, "/tmp", /*log_prefix=*/"",
      options.auth_secret, listeners, &options.shard_endpoints));
  return options;
}

// Measured CRC32C throughput on this machine (bytes/sec), over a
// frame-sized buffer.
double MeasureCrcBytesPerSec() {
  std::vector<uint8_t> buf(1 << 20, 0xA7);
  uint32_t sink = 0;
  gz::WallTimer timer;
  int reps = 0;
  while (timer.Seconds() < 0.05) {
    sink ^= gz::Crc32c(buf.data(), buf.size());
    ++reps;
  }
  // Keep the sink alive so the loop cannot be discarded.
  if (sink == 0xDEADBEEF) std::fprintf(stderr, "\n");
  return static_cast<double>(buf.size()) * reps / timer.Seconds();
}

// v3-vs-v2 framing delta: v2 shipped identical bytes without the
// trailer, so the added cost is one CRC pass over the update-frame
// bytes on the send side and one on the receive side.
double EstimatedChecksumSeconds(size_t updates, double crc_bytes_per_sec) {
  const double frame_bytes =
      static_cast<double>(updates) * sizeof(gz::GraphUpdate);
  return 2.0 * frame_bytes / crc_bytes_per_sec;
}

int RunRebalanceBench(const gz::bench::Workload& w) {
  using namespace gz;
  std::printf("[\n");
  bool first = true;
  for (const BenchMode mode :
       {BenchMode::kInProcess, BenchMode::kProcess, BenchMode::kProcessTcp}) {
    GraphZeppelinConfig base = bench::DefaultGzConfig();
    base.num_nodes = w.num_nodes;
    base.num_workers = 1;
    ShardClusterOptions options;
    options.migrate_nodes_per_chunk =
        std::max<uint64_t>(1, w.num_nodes / 64);
    std::vector<std::unique_ptr<ListenerShard>> listeners;
    options = OptionsFor(mode, 2, &listeners, std::move(options));
    ShardedGraphZeppelin sharded(base, 2, ExecMode(mode), options);
    GZ_CHECK_OK(sharded.Init());

    const std::vector<GraphUpdate>& updates = w.stream.updates;
    const size_t burst = 4096;
    size_t fed = 0;
    double max_burst_baseline = 0, max_burst_migrating = 0;
    uint64_t bursts_during_migration = 0;
    auto feed_burst = [&](double* max_burst) {
      if (fed >= updates.size()) return false;
      const size_t count = std::min(burst, updates.size() - fed);
      WallTimer t;
      sharded.Update(updates.data() + fed, count);
      *max_burst = std::max(*max_burst, t.Seconds());
      fed += count;
      return true;
    };

    // Phase 1: steady state over the first third (baseline latency).
    while (fed < updates.size() / 3) feed_burst(&max_burst_baseline);

    // Phase 2: split shard 0 under load.
    WallTimer split_timer;
    Result<int> split = sharded.BeginSplitShard(0);
    GZ_CHECK_MSG(split.ok(), split.status().ToString().c_str());
    while (sharded.migration_active()) {
      bursts_during_migration += feed_burst(&max_burst_migrating);
      GZ_CHECK_OK(sharded.PumpMigration());
    }
    const double split_seconds = split_timer.Seconds();

    // Phase 3: more steady state, then remove the split child.
    const size_t resume_at = fed;
    while (fed < resume_at + updates.size() / 6) {
      if (!feed_burst(&max_burst_baseline)) break;
    }
    WallTimer remove_timer;
    GZ_CHECK_OK(sharded.BeginRemoveShard(split.value()));
    while (sharded.migration_active()) {
      bursts_during_migration += feed_burst(&max_burst_migrating);
      GZ_CHECK_OK(sharded.PumpMigration());
    }
    const double remove_seconds = remove_timer.Seconds();

    while (feed_burst(&max_burst_baseline)) {
    }
    sharded.Flush();

    const ConnectivityResult r = sharded.ListSpanningForest();
    GZ_CHECK(!r.failed);
    std::printf(
        "%s  {\"bench\": \"ext_sharded_rebalance\", \"workload\": \"%s\",\n"
        "   \"mode\": \"%s\", \"updates\": %zu,\n"
        "   \"split_seconds\": %.4f, \"remove_seconds\": %.4f,\n"
        "   \"bursts_during_migration\": %llu,\n"
        "   \"max_burst_ms_baseline\": %.3f,\n"
        "   \"max_burst_ms_during_migration\": %.3f,\n"
        "   \"components\": %zu}",
        first ? "" : ",\n", w.name.c_str(), BenchModeName(mode),
        updates.size(), split_seconds, remove_seconds,
        static_cast<unsigned long long>(bursts_during_migration),
        max_burst_baseline * 1e3, max_burst_migrating * 1e3,
        r.num_components);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}

int RunReplicationBench(const gz::bench::Workload& w) {
  // The replication column: what does R=2 cost on the ingest path
  // (every routed slab is sent twice), and how does XOR anti-entropy
  // repair of a killed replica compare against the classic
  // checkpoint-restore + log-replay restart of the same replica.
  using namespace gz;
  std::printf("[\n");
  bool first = true;
  for (const BenchMode mode : {BenchMode::kProcess, BenchMode::kProcessTcp}) {
    GraphZeppelinConfig base = bench::DefaultGzConfig();
    base.num_nodes = w.num_nodes;
    base.num_workers = 1;
    const std::vector<GraphUpdate>& updates = w.stream.updates;
    const int shards = 2;

    double ingest_seconds[3] = {0, 0, 0};
    double repair_seconds = 0, restore_seconds = 0;
    uint64_t repair_chunks = 0;
    size_t components = 0;
    for (const int replication : {1, 2}) {
      ShardClusterOptions options;
      options.replication_factor = replication;
      // Auto-checkpointing off: the restore column must measure a
      // restart against the HALF-STREAM-OLD checkpoint taken below,
      // not whatever fresher one the interval happened to cut.
      options.checkpoint_interval_updates = 0;
      std::vector<std::unique_ptr<ListenerShard>> listeners;
      options = OptionsFor(mode, shards * replication, &listeners,
                           std::move(options));
      ShardCluster cluster(base, shards, options);
      GZ_CHECK_OK(cluster.Start());

      // Checkpoint at the halfway mark: a replica killed at the END of
      // the stream then restores a half-stream-old checkpoint and
      // replays the other half — the representative mid-stream-crash
      // shape — while anti-entropy repair moves O(graph) sketch bytes
      // regardless of how long ago the last checkpoint was.
      const size_t half = updates.size() / 2;
      WallTimer timer;
      GZ_CHECK_OK(cluster.Update(updates.data(), half));
      GZ_CHECK_OK(cluster.Checkpoint());
      GZ_CHECK_OK(
          cluster.Update(updates.data() + half, updates.size() - half));
      GZ_CHECK_OK(cluster.Flush());
      ingest_seconds[replication] = timer.Seconds();

      if (replication == 2) {
        // Both recovery paths start from the same wound: replica 1 of
        // shard 1 killed at the end of the stream, checkpoint half a
        // stream stale. Restore is measured FIRST — anti-entropy's
        // finalizer writes a fresh checkpoint, which would hand the
        // restart an artificially empty replay log.
        cluster.KillReplica(1, 1);
        WallTimer restore_timer;
        GZ_CHECK_OK(cluster.RestartReplica(1, 1));
        restore_seconds = restore_timer.Seconds();

        cluster.KillReplica(1, 1);
        WallTimer repair_timer;
        GZ_CHECK_OK(cluster.Reconcile(&repair_chunks));
        repair_seconds = repair_timer.Seconds();

        Result<GraphSnapshot> merged = cluster.Snapshot();
        GZ_CHECK_OK(merged.status());
        const ConnectivityResult r =
            Connectivity(std::move(merged).value(), base.query_threads);
        GZ_CHECK(!r.failed);
        components = r.num_components;
      }
      GZ_CHECK_OK(cluster.Shutdown());
    }
    std::printf(
        "%s  {\"bench\": \"ext_sharded_replication\", \"workload\": \"%s\",\n"
        "   \"mode\": \"%s\", \"shards\": %d, \"updates\": %zu,\n"
        "   \"updates_per_sec_r1\": %.0f, \"updates_per_sec_r2\": %.0f,\n"
        "   \"replication_overhead_pct\": %.1f,\n"
        "   \"repair_seconds\": %.4f, \"repair_chunks\": %llu,\n"
        "   \"restore_seconds\": %.4f,\n"
        "   \"components\": %zu}",
        first ? "" : ",\n", w.name.c_str(), BenchModeName(mode), shards,
        updates.size(),
        static_cast<double>(updates.size()) / ingest_seconds[1],
        static_cast<double>(updates.size()) / ingest_seconds[2],
        100.0 * (ingest_seconds[2] / ingest_seconds[1] - 1.0),
        repair_seconds, static_cast<unsigned long long>(repair_chunks),
        restore_seconds, components);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gz;
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);
  if (argc > 1 && std::strcmp(argv[1], "--rebalance") == 0) {
    std::fprintf(stderr, "sharded rebalance bench: %s, %zu updates\n",
                 w.name.c_str(), w.stream.updates.size());
    return RunRebalanceBench(w);
  }
  if (argc > 1 && std::strcmp(argv[1], "--replication") == 0) {
    std::fprintf(stderr, "sharded replication bench: %s, %zu updates\n",
                 w.name.c_str(), w.stream.updates.size());
    return RunReplicationBench(w);
  }

  std::fprintf(stderr, "sharded bench: %s, %zu updates\n", w.name.c_str(),
               w.stream.updates.size());

  const int max_shards = bench::GetEnvInt("GZ_BENCH_SHARDS_MAX", 8);
  const double crc_bytes_per_sec = MeasureCrcBytesPerSec();
  size_t expect_components = 0;
  bool have_expectation = false;
  std::printf("[\n");
  bool first = true;
  for (int shards : {1, 2, 4, 8}) {
    if (shards > max_shards) continue;
    for (const BenchMode mode :
         {BenchMode::kInProcess, BenchMode::kProcess,
          BenchMode::kProcessTcp}) {
      GraphZeppelinConfig base = bench::DefaultGzConfig();
      base.num_nodes = w.num_nodes;
      base.num_workers = 1;  // One worker per shard: shards ARE parallelism.
      std::vector<std::unique_ptr<ListenerShard>> listeners;
      ShardedGraphZeppelin sharded(base, shards, ExecMode(mode),
                                   OptionsFor(mode, shards, &listeners));
      GZ_CHECK_OK(sharded.Init());

      WallTimer timer;
      sharded.Update(w.stream.updates.data(), w.stream.updates.size());
      sharded.Flush();  // Ingestion includes applying all updates.
      const double ingest_seconds = timer.Seconds();

      // Query split: aggregation (shard snapshots -> one merged
      // snapshot; in process mode this is the serialized-bytes fold
      // over the sockets) vs the Boruvka solve on the result.
      WallTimer agg_timer;
      GraphSnapshot merged = sharded.Snapshot();
      const double agg_seconds = agg_timer.Seconds();
      WallTimer solve_timer;
      const ConnectivityResult r =
          Connectivity(std::move(merged), base.query_threads);
      const double solve_seconds = solve_timer.Seconds();
      GZ_CHECK(!r.failed);
      if (!have_expectation) {
        expect_components = r.num_components;
        have_expectation = true;
      } else {
        // Mode and shard count are invisible in the result.
        GZ_CHECK(r.num_components == expect_components);
      }

      // The v3 checksum's share of this row's ingest wall time (zero
      // for in-process: no frames, no checksums).
      const double checksum_seconds =
          mode == BenchMode::kInProcess
              ? 0.0
              : EstimatedChecksumSeconds(w.stream.updates.size(),
                                         crc_bytes_per_sec);
      std::printf(
          "%s  {\"bench\": \"ext_sharded\", \"workload\": \"%s\",\n"
          "   \"shards\": %d, \"mode\": \"%s\",\n"
          "   \"updates\": %zu, \"updates_per_sec\": %.0f,\n"
          "   \"snapshot_agg_seconds\": %.4f, \"query_seconds\": %.4f,\n"
          "   \"crc32c_gb_per_sec\": %.2f,\n"
          "   \"checksum_overhead_vs_v2_pct\": %.3f,\n"
          "   \"components\": %zu}",
          first ? "" : ",\n", w.name.c_str(), shards, BenchModeName(mode),
          w.stream.updates.size(),
          static_cast<double>(w.stream.updates.size()) / ingest_seconds,
          agg_seconds, solve_seconds, crc_bytes_per_sec / 1e9,
          100.0 * checksum_seconds / ingest_seconds, r.num_components);
      first = false;
    }
  }
  std::printf("\n]\n");
  return 0;
}
