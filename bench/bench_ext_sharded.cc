// Extension bench (paper Section 8): sharded ingestion. Sketch
// linearity lets shards ingest disjoint stream partitions with zero
// coordination; a query XORs shard snapshots node-wise.
//
// Both execution modes run per shard count: in-process shard instances
// (routing + per-shard pipelines + in-place merge) and real gz_shard
// worker processes (the same routing, plus socket framing, and a
// query-time aggregation of serialized GraphSnapshot bytes). One JSON
// object per (shards, mode) reports ingestion rate and the
// snapshot-aggregation latency, so BENCH trajectories can track the
// transport overhead directly. On this container's single core the
// per-shard pipelines add overhead; with real cores/machines per shard,
// rates multiply (paper Section 8).
#include <cstdio>

#include "bench/bench_common.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "util/timer.h"

int main() {
  using namespace gz;
  using Mode = ShardedGraphZeppelin::Mode;
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);

  std::fprintf(stderr, "sharded bench: %s, %zu updates\n", w.name.c_str(),
               w.stream.updates.size());

  size_t expect_components = 0;
  bool have_expectation = false;
  std::printf("[\n");
  bool first = true;
  for (int shards : {1, 2, 4, 8}) {
    for (const Mode mode : {Mode::kInProcess, Mode::kProcess}) {
      GraphZeppelinConfig base = bench::DefaultGzConfig();
      base.num_nodes = w.num_nodes;
      base.num_workers = 1;  // One worker per shard: shards ARE parallelism.
      ShardedGraphZeppelin sharded(base, shards, mode);
      GZ_CHECK_OK(sharded.Init());

      WallTimer timer;
      sharded.Update(w.stream.updates.data(), w.stream.updates.size());
      sharded.Flush();  // Ingestion includes applying all updates.
      const double ingest_seconds = timer.Seconds();

      // Query split: aggregation (shard snapshots -> one merged
      // snapshot; in process mode this is the serialized-bytes fold
      // over the sockets) vs the Boruvka solve on the result.
      WallTimer agg_timer;
      GraphSnapshot merged = sharded.Snapshot();
      const double agg_seconds = agg_timer.Seconds();
      WallTimer solve_timer;
      const ConnectivityResult r =
          Connectivity(std::move(merged), base.query_threads);
      const double solve_seconds = solve_timer.Seconds();
      GZ_CHECK(!r.failed);
      if (!have_expectation) {
        expect_components = r.num_components;
        have_expectation = true;
      } else {
        // Mode and shard count are invisible in the result.
        GZ_CHECK(r.num_components == expect_components);
      }

      std::printf(
          "%s  {\"bench\": \"ext_sharded\", \"workload\": \"%s\",\n"
          "   \"shards\": %d, \"mode\": \"%s\",\n"
          "   \"updates\": %zu, \"updates_per_sec\": %.0f,\n"
          "   \"snapshot_agg_seconds\": %.4f, \"query_seconds\": %.4f,\n"
          "   \"components\": %zu}",
          first ? "" : ",\n", w.name.c_str(), shards,
          mode == Mode::kInProcess ? "in_process" : "process",
          w.stream.updates.size(),
          static_cast<double>(w.stream.updates.size()) / ingest_seconds,
          agg_seconds, solve_seconds, r.num_components);
      first = false;
    }
  }
  std::printf("\n]\n");
  return 0;
}
