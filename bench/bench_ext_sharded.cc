// Extension bench (paper Section 8): sharded ingestion. Sketch
// linearity lets shards ingest disjoint stream partitions with zero
// coordination; a query XORs shard snapshots node-wise.
//
// Both execution modes run per shard count: in-process shard instances
// (routing + per-shard pipelines + in-place merge) and real gz_shard
// worker processes (the same routing, plus socket framing, and a
// query-time aggregation of serialized GraphSnapshot bytes). One JSON
// object per (shards, mode) reports ingestion rate and the
// snapshot-aggregation latency, so BENCH trajectories can track the
// transport overhead directly. On this container's single core the
// per-shard pipelines add overhead; with real cores/machines per shard,
// rates multiply (paper Section 8).
// With --rebalance, a second benchmark runs instead: elastic reshard
// operations (split, then remove) fire while the stream is flowing,
// and the JSON reports the migration wall time plus the worst
// per-burst update latency during the migration vs the steady-state
// baseline — the "rebalance under load" column. A stall-free reshard
// keeps the two latencies in the same ballpark; a flush-barrier design
// would spike the migration column by the whole shard drain time.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "util/timer.h"

namespace {

using gz::ShardedGraphZeppelin;
using Mode = ShardedGraphZeppelin::Mode;

int RunRebalanceBench(const gz::bench::Workload& w) {
  using namespace gz;
  std::printf("[\n");
  bool first = true;
  for (const Mode mode : {Mode::kInProcess, Mode::kProcess}) {
    GraphZeppelinConfig base = bench::DefaultGzConfig();
    base.num_nodes = w.num_nodes;
    base.num_workers = 1;
    ShardClusterOptions options;
    options.migrate_nodes_per_chunk =
        std::max<uint64_t>(1, w.num_nodes / 64);
    ShardedGraphZeppelin sharded(base, 2, mode, options);
    GZ_CHECK_OK(sharded.Init());

    const std::vector<GraphUpdate>& updates = w.stream.updates;
    const size_t burst = 4096;
    size_t fed = 0;
    double max_burst_baseline = 0, max_burst_migrating = 0;
    uint64_t bursts_during_migration = 0;
    auto feed_burst = [&](double* max_burst) {
      if (fed >= updates.size()) return false;
      const size_t count = std::min(burst, updates.size() - fed);
      WallTimer t;
      sharded.Update(updates.data() + fed, count);
      *max_burst = std::max(*max_burst, t.Seconds());
      fed += count;
      return true;
    };

    // Phase 1: steady state over the first third (baseline latency).
    while (fed < updates.size() / 3) feed_burst(&max_burst_baseline);

    // Phase 2: split shard 0 under load.
    WallTimer split_timer;
    Result<int> split = sharded.BeginSplitShard(0);
    GZ_CHECK_MSG(split.ok(), split.status().ToString().c_str());
    while (sharded.migration_active()) {
      bursts_during_migration += feed_burst(&max_burst_migrating);
      GZ_CHECK_OK(sharded.PumpMigration());
    }
    const double split_seconds = split_timer.Seconds();

    // Phase 3: more steady state, then remove the split child.
    const size_t resume_at = fed;
    while (fed < resume_at + updates.size() / 6) {
      if (!feed_burst(&max_burst_baseline)) break;
    }
    WallTimer remove_timer;
    GZ_CHECK_OK(sharded.BeginRemoveShard(split.value()));
    while (sharded.migration_active()) {
      bursts_during_migration += feed_burst(&max_burst_migrating);
      GZ_CHECK_OK(sharded.PumpMigration());
    }
    const double remove_seconds = remove_timer.Seconds();

    while (feed_burst(&max_burst_baseline)) {
    }
    sharded.Flush();

    const ConnectivityResult r = sharded.ListSpanningForest();
    GZ_CHECK(!r.failed);
    std::printf(
        "%s  {\"bench\": \"ext_sharded_rebalance\", \"workload\": \"%s\",\n"
        "   \"mode\": \"%s\", \"updates\": %zu,\n"
        "   \"split_seconds\": %.4f, \"remove_seconds\": %.4f,\n"
        "   \"bursts_during_migration\": %llu,\n"
        "   \"max_burst_ms_baseline\": %.3f,\n"
        "   \"max_burst_ms_during_migration\": %.3f,\n"
        "   \"components\": %zu}",
        first ? "" : ",\n", w.name.c_str(),
        mode == Mode::kInProcess ? "in_process" : "process",
        updates.size(), split_seconds, remove_seconds,
        static_cast<unsigned long long>(bursts_during_migration),
        max_burst_baseline * 1e3, max_burst_migrating * 1e3,
        r.num_components);
    first = false;
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gz;
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);
  if (argc > 1 && std::strcmp(argv[1], "--rebalance") == 0) {
    std::fprintf(stderr, "sharded rebalance bench: %s, %zu updates\n",
                 w.name.c_str(), w.stream.updates.size());
    return RunRebalanceBench(w);
  }

  std::fprintf(stderr, "sharded bench: %s, %zu updates\n", w.name.c_str(),
               w.stream.updates.size());

  size_t expect_components = 0;
  bool have_expectation = false;
  std::printf("[\n");
  bool first = true;
  for (int shards : {1, 2, 4, 8}) {
    for (const Mode mode : {Mode::kInProcess, Mode::kProcess}) {
      GraphZeppelinConfig base = bench::DefaultGzConfig();
      base.num_nodes = w.num_nodes;
      base.num_workers = 1;  // One worker per shard: shards ARE parallelism.
      ShardedGraphZeppelin sharded(base, shards, mode);
      GZ_CHECK_OK(sharded.Init());

      WallTimer timer;
      sharded.Update(w.stream.updates.data(), w.stream.updates.size());
      sharded.Flush();  // Ingestion includes applying all updates.
      const double ingest_seconds = timer.Seconds();

      // Query split: aggregation (shard snapshots -> one merged
      // snapshot; in process mode this is the serialized-bytes fold
      // over the sockets) vs the Boruvka solve on the result.
      WallTimer agg_timer;
      GraphSnapshot merged = sharded.Snapshot();
      const double agg_seconds = agg_timer.Seconds();
      WallTimer solve_timer;
      const ConnectivityResult r =
          Connectivity(std::move(merged), base.query_threads);
      const double solve_seconds = solve_timer.Seconds();
      GZ_CHECK(!r.failed);
      if (!have_expectation) {
        expect_components = r.num_components;
        have_expectation = true;
      } else {
        // Mode and shard count are invisible in the result.
        GZ_CHECK(r.num_components == expect_components);
      }

      std::printf(
          "%s  {\"bench\": \"ext_sharded\", \"workload\": \"%s\",\n"
          "   \"shards\": %d, \"mode\": \"%s\",\n"
          "   \"updates\": %zu, \"updates_per_sec\": %.0f,\n"
          "   \"snapshot_agg_seconds\": %.4f, \"query_seconds\": %.4f,\n"
          "   \"components\": %zu}",
          first ? "" : ",\n", w.name.c_str(), shards,
          mode == Mode::kInProcess ? "in_process" : "process",
          w.stream.updates.size(),
          static_cast<double>(w.stream.updates.size()) / ingest_seconds,
          agg_seconds, solve_seconds, r.num_components);
      first = false;
    }
  }
  std::printf("\n]\n");
  return 0;
}
