// Extension bench (paper Section 8): sharded ingestion. Sketch
// linearity lets shards ingest disjoint stream partitions with zero
// coordination; a query XORs shard snapshots node-wise. This bench
// measures the coordination-free partitioning overhead (routing + per-
// shard pipelines + merge-at-query) — on a multicore/multimachine
// deployment each shard would run on its own cores, multiplying
// throughput.
#include <cstdio>

#include "bench/bench_common.h"
#include "distributed/sharded_graph_zeppelin.h"
#include "util/timer.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Extension (Sec. 8)", "sharded ingestion");
  std::printf("%-8s %8s %14s %12s %14s\n", "Dataset", "Shards", "Updates/s",
              "Query (s)", "Components");

  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);

  size_t expect_components = 0;
  for (int shards : {1, 2, 4, 8}) {
    GraphZeppelinConfig base = bench::DefaultGzConfig();
    base.num_nodes = w.num_nodes;
    base.num_workers = 1;  // One worker per shard: shards ARE the parallelism.
    ShardedGraphZeppelin sharded(base, shards);
    GZ_CHECK_OK(sharded.Init());

    WallTimer timer;
    sharded.Update(w.stream.updates.data(), w.stream.updates.size());
    sharded.Flush();  // Ingestion includes applying all updates.
    const double total = timer.Seconds();
    WallTimer query_timer;
    const ConnectivityResult r = sharded.ListSpanningForest();
    const double query_seconds = query_timer.Seconds();
    GZ_CHECK(!r.failed);
    if (shards == 1) {
      expect_components = r.num_components;
    } else {
      GZ_CHECK(r.num_components == expect_components);
    }
    std::printf("%-8s %8d %14.0f %12.3f %14zu\n", w.name.c_str(), shards,
                static_cast<double>(w.stream.updates.size()) / total,
                query_seconds, r.num_components);
  }
  std::printf(
      "\nAll shard counts produced identical component structure\n"
      "(GZ_CHECK-verified): linearity makes sharding lossless. On a\n"
      "single core the per-shard pipelines add overhead; with real\n"
      "cores/machines per shard, rates multiply (paper section 8).\n");
  return 0;
}
