// Figure 15: gutter size (as a fraction f of the node-sketch size) vs
// ingestion rate, with sketches in RAM and on disk.
//
// Paper shape to reproduce: tiny buffers are catastrophic (every update
// pays synchronization — and on disk, I/O); rates climb steeply with f
// and plateau, with the on-disk configuration needing a larger f
// (paper: f=0.01 suffices in RAM, f=0.5 on SSD).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 15", "gutter size factor vs ingestion rate");
  std::printf("%-10s %14s %14s\n", "f", "RAM (upd/s)", "Disk (upd/s)");

  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 2;
  const bench::Workload w = bench::MakeKronWorkload(scale);

  const std::vector<double> fractions = {0.0001, 0.001, 0.01, 0.1,
                                         0.5,    1.0,   2.0};
  for (double f : fractions) {
    GraphZeppelinConfig ram_config = bench::DefaultGzConfig();
    ram_config.gutter_fraction = f;
    const bench::IngestResult ram = bench::RunGraphZeppelin(w, ram_config);

    GraphZeppelinConfig disk_config = bench::DefaultGzConfig();
    disk_config.gutter_fraction = f;
    disk_config.storage = GraphZeppelinConfig::Storage::kDisk;
    const bench::IngestResult disk = bench::RunGraphZeppelin(w, disk_config);

    std::printf("%-10.4f %14.0f %14.0f\n", f, ram.updates_per_sec,
                disk.updates_per_sec);
  }
  std::printf(
      "\nShape check vs paper: rates rise steeply with f then plateau;\n"
      "the on-disk curve needs a larger f to amortize read-XOR-write\n"
      "cycles on the sketch file.\n");
  return 0;
}
