// Figure 11: space used by GraphZeppelin vs the explicit-representation
// baselines on dense Kronecker streams.
//
// Paper shape to reproduce: explicit structures grow linearly with the
// edge count (quadratic in V for dense graphs) while GraphZeppelin's
// sketches grow as V log^2 V, so a crossover appears as scale grows and
// GraphZeppelin's advantage widens beyond it.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 11",
                     "space used processing dense kron streams");
  std::printf("%-8s %14s %14s %14s %18s\n", "Dataset", "Aspen-like",
              "Terrace-like", "GraphZeppelin", "GZ/explicit ratio");

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 11);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);

    CsrBatchGraph aspen_like(w.num_nodes, 1 << 16);
    bench::RunExplicitBaseline(w, &aspen_like);
    HashAdjacencyGraph terrace_like(w.num_nodes);
    bench::RunExplicitBaseline(w, &terrace_like);

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    const bench::IngestResult gz_result = bench::RunGraphZeppelin(w, config);

    char b1[32], b2[32], b3[32];
    std::printf("%-8s %14s %14s %14s %17.2fx\n", w.name.c_str(),
                FormatBytes(aspen_like.ByteSize(), b1, sizeof(b1)),
                FormatBytes(terrace_like.ByteSize(), b2, sizeof(b2)),
                FormatBytes(gz_result.ram_bytes, b3, sizeof(b3)),
                static_cast<double>(gz_result.ram_bytes) /
                    static_cast<double>(aspen_like.ByteSize()));
  }
  std::printf(
      "\nShape check vs paper: explicit baselines grow ~V^2 on dense\n"
      "streams while GraphZeppelin grows ~V log^2 V; the ratio falls\n"
      "with scale and crosses 1 at the paper's 32-64 GB budgets\n"
      "(kron17-18 full scale).\n");
  return 0;
}
