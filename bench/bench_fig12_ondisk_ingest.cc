// Figure 12a/b: stream ingestion with data structures on disk.
//
// Paper shape to reproduce: GraphZeppelin keeps a high ingestion rate
// with its sketches on SSD — within ~30% of its in-RAM rate — via the
// gutter tree / leaf gutters, while explicit systems collapse once they
// spill out of RAM. The explicit baselines here are in-RAM (we cannot
// cgroup-limit them in-process), so their rates are *upper bounds*;
// GraphZeppelin's on-disk rates are real read-XOR-write disk cycles.
#include <cstdio>

#include "baseline/disk_adjacency_graph.h"
#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 12a/b",
                     "ingestion rate, sketches on disk (updates/s)");
  std::printf("%-8s %12s %12s %13s %13s %12s\n", "Dataset",
              "explicit-dsk", "Terrace-lk*", "GutterTree", "GZ LeafOnly",
              "disk/RAM");

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);

    // Honest out-of-core explicit baseline: adjacency lists on disk
    // with a small paged cache (the "Aspen/Terrace swapping" regime).
    DiskAdjacencyParams dp;
    dp.num_nodes = w.num_nodes;
    dp.file_path = bench::TempDir() + "/gz_bench_diskadj.bin";
    dp.cache_vertices = std::max<size_t>(8, w.num_nodes / 64);
    DiskAdjacencyGraph explicit_disk(dp);
    GZ_CHECK_OK(explicit_disk.Init());
    const bench::IngestResult aspen =
        bench::RunExplicitBaseline(w, &explicit_disk);
    std::remove(dp.file_path.c_str());

    HashAdjacencyGraph terrace_like(w.num_nodes);
    const bench::IngestResult terrace =
        bench::RunExplicitBaseline(w, &terrace_like);

    // GraphZeppelin with on-disk sketches, gutter-tree buffering.
    GraphZeppelinConfig tree_config = bench::DefaultGzConfig();
    tree_config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
    tree_config.storage = GraphZeppelinConfig::Storage::kDisk;
    const bench::IngestResult tree = bench::RunGraphZeppelin(w, tree_config);

    // GraphZeppelin with on-disk sketches, leaf-only gutters.
    GraphZeppelinConfig leaf_config = bench::DefaultGzConfig();
    leaf_config.storage = GraphZeppelinConfig::Storage::kDisk;
    const bench::IngestResult leaf = bench::RunGraphZeppelin(w, leaf_config);

    // In-RAM reference for the 29%-slowdown comparison.
    GraphZeppelinConfig ram_config = bench::DefaultGzConfig();
    const bench::IngestResult ram = bench::RunGraphZeppelin(w, ram_config);

    std::printf("%-8s %12.0f %12.0f %13.0f %13.0f %11.0f%%\n",
                w.name.c_str(), aspen.updates_per_sec,
                terrace.updates_per_sec, tree.updates_per_sec,
                leaf.updates_per_sec,
                100.0 * leaf.updates_per_sec / ram.updates_per_sec);
  }
  std::printf(
      "\nexplicit-dsk: adjacency lists on disk behind a small paged\n"
      "cache (honest out-of-core explicit baseline). * Terrace-like\n"
      "runs fully in RAM: an upper bound on its out-of-core rate.\n"
      "Shape check vs paper: the explicit representation collapses once\n"
      "per-vertex state pages to disk, while GraphZeppelin stays within\n"
      "a modest factor of its in-RAM rate (paper: 29%% on kron18).\n");
  return 0;
}
