// Figure 10 (Table): dimensions of the evaluation datasets — Kronecker
// streams kronN plus the real-world stand-ins. Scaled down by default;
// set GZ_BENCH_KRON_MIN/MAX to regenerate larger streams.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 10", "dataset dimensions");
  std::printf("%-14s %12s %14s %16s\n", "Name", "# Nodes", "# Edges",
              "# Stream Updates");

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 11);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);
    std::printf("%-14s %12" PRIu64 " %14" PRIu64 " %16zu\n", w.name.c_str(),
                w.num_nodes, w.num_edges, w.stream.updates.size());
  }
  for (const bench::Workload& w : bench::MakeRealWorldWorkloads()) {
    std::printf("%-14s %12" PRIu64 " %14" PRIu64 " %16zu\n", w.name.c_str(),
                w.num_nodes, w.num_edges, w.stream.updates.size());
  }
  std::printf(
      "\nNote: kron streams are dense (~half of all possible edges);\n"
      "real-world rows are offline stand-ins shaped like the paper's\n"
      "Table 10 datasets (see DESIGN.md section 2).\n");
  return 0;
}
