// Figure 13: in-RAM ingestion rate, GraphZeppelin vs the explicit
// baselines on dense Kronecker streams.
//
// Paper shape to reproduce: explicit systems slow down as the graph
// densifies (per-edge structure maintenance grows), while
// GraphZeppelin's per-update cost is independent of density; by kron18
// GraphZeppelin ingests ~3x faster than Aspen and >10x Terrace.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 13", "in-RAM ingestion rate (updates/s)");
  std::printf("%-8s %14s %14s %14s\n", "Dataset", "Aspen-like",
              "Terrace-like", "GraphZeppelin");

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 11);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);

    CsrBatchGraph aspen_like(w.num_nodes, 1 << 16);
    const bench::IngestResult aspen =
        bench::RunExplicitBaseline(w, &aspen_like);
    HashAdjacencyGraph terrace_like(w.num_nodes);
    const bench::IngestResult terrace =
        bench::RunExplicitBaseline(w, &terrace_like);

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    const bench::IngestResult gz_result = bench::RunGraphZeppelin(w, config);

    std::printf("%-8s %14.0f %14.0f %14.0f\n", w.name.c_str(),
                aspen.updates_per_sec, terrace.updates_per_sec,
                gz_result.updates_per_sec);
  }
  std::printf(
      "\nShape check vs paper: GraphZeppelin's rate is roughly flat in\n"
      "density/scale; explicit baselines degrade as per-vertex structures\n"
      "grow. Absolute rates here are single-core (paper: 46 threads).\n");
  return 0;
}
