// Figure 13: in-RAM ingestion rate, GraphZeppelin vs the explicit
// baselines on dense Kronecker streams.
//
// Paper shape to reproduce: explicit systems slow down as the graph
// densifies (per-edge structure maintenance grows), while
// GraphZeppelin's per-update cost is independent of density; by kron18
// GraphZeppelin ingests ~3x faster than Aspen and >10x Terrace.
//
// The two GraphZeppelin columns force the sketch kernel: "GZ-scalar"
// pins GZ_SKETCH_KERNEL=scalar, "GZ-<best>" the widest SIMD kernel the
// CPU supports, so the table shows what the vectorized update path
// buys end to end. A JSON tail re-emits the rows for BENCH_*.json
// ingest trajectories.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sketch/sketch_kernel.h"

int main() {
  using namespace gz;
  const SketchKernel best = BestSupportedSketchKernel();
  char gz_best_col[16];
  std::snprintf(gz_best_col, sizeof(gz_best_col), "GZ-%s",
                SketchKernelName(best));

  bench::PrintHeader("Figure 13", "in-RAM ingestion rate (updates/s)");
  std::printf("%-8s %14s %14s %14s %14s\n", "Dataset", "Aspen-like",
              "Terrace-like", "GZ-scalar", gz_best_col);

  struct JsonRow {
    std::string dataset;
    double aspen = 0, terrace = 0, gz_scalar = 0, gz_best = 0;
  };
  std::vector<JsonRow> json_rows;

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 11);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);

    CsrBatchGraph aspen_like(w.num_nodes, 1 << 16);
    const bench::IngestResult aspen =
        bench::RunExplicitBaseline(w, &aspen_like);
    HashAdjacencyGraph terrace_like(w.num_nodes);
    const bench::IngestResult terrace =
        bench::RunExplicitBaseline(w, &terrace_like);

    GraphZeppelinConfig config = bench::DefaultGzConfig();
    ForceSketchKernel(SketchKernel::kScalar);
    const bench::IngestResult gz_scalar = bench::RunGraphZeppelin(w, config);
    ForceSketchKernel(best);
    const bench::IngestResult gz_best = bench::RunGraphZeppelin(w, config);

    std::printf("%-8s %14.0f %14.0f %14.0f %14.0f\n", w.name.c_str(),
                aspen.updates_per_sec, terrace.updates_per_sec,
                gz_scalar.updates_per_sec, gz_best.updates_per_sec);
    json_rows.push_back({w.name, aspen.updates_per_sec,
                         terrace.updates_per_sec, gz_scalar.updates_per_sec,
                         gz_best.updates_per_sec});
  }
  std::printf(
      "\nShape check vs paper: GraphZeppelin's rate is roughly flat in\n"
      "density/scale; explicit baselines degrade as per-vertex structures\n"
      "grow. Absolute rates here are single-core (paper: 46 threads).\n\n");

  std::printf("{\n  \"bench\": \"fig13_inram_ingest\", "
              "\"best_kernel\": \"%s\",\n  \"rows\": [\n",
              SketchKernelName(best));
  for (size_t i = 0; i < json_rows.size(); ++i) {
    const JsonRow& r = json_rows[i];
    std::printf("    {\"dataset\": \"%s\", \"aspen_like\": %.0f, "
                "\"terrace_like\": %.0f, \"gz_scalar\": %.0f, "
                "\"gz_best_kernel\": %.0f}%s\n",
                r.dataset.c_str(), r.aspen, r.terrace, r.gz_scalar, r.gz_best,
                i + 1 < json_rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
