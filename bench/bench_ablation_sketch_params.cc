// Ablation bench: the design choices behind CubeSketch and the
// ingestion pipeline (DESIGN.md section 5).
//   (a) column count vs failure rate vs speed/size — the delta knob;
//   (b) Boruvka round budget vs query success;
//   (c) batch size vs node-sketch update throughput — why buffering
//       exists even in RAM.
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "core/connectivity.h"
#include "sketch/cube_sketch.h"
#include "sketch/node_sketch.h"
#include "util/kwise_hash.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/xxhash.h"

namespace gz {
namespace {

void AblateColumns() {
  std::printf("--- (a) CubeSketch columns: failure rate / speed / size ---\n");
  std::printf("%-8s %12s %14s %10s\n", "cols", "fail rate", "updates/s",
              "bytes");
  const uint64_t n = 1 << 20;
  const int trials = 800;
  for (int cols : {1, 2, 3, 5, 7, 9, 12}) {
    SplitMix64 rng(cols);
    int failures = 0;
    for (int t = 0; t < trials; ++t) {
      CubeSketchParams p;
      p.vector_len = n;
      p.seed = static_cast<uint64_t>(cols) * 100000 + t;
      p.cols = cols;
      CubeSketch s(p);
      const int support = 2 + static_cast<int>(rng.NextBelow(100));
      std::set<uint64_t> in;
      while (in.size() < static_cast<size_t>(support)) {
        in.insert(rng.NextBelow(n));
      }
      for (uint64_t idx : in) s.Update(idx);
      if (s.Query().kind == SampleKind::kFail) ++failures;
    }
    // Speed measurement.
    CubeSketchParams p;
    p.vector_len = n;
    p.seed = 1;
    p.cols = cols;
    CubeSketch s(p);
    std::vector<uint64_t> indices(200000);
    for (auto& idx : indices) idx = rng.NextBelow(n);
    WallTimer timer;
    s.UpdateBatch(indices.data(), indices.size());
    const double rate = static_cast<double>(indices.size()) / timer.Seconds();
    std::printf("%-8d %11.4f%% %14.0f %10zu\n", cols,
                100.0 * failures / trials, rate, s.ByteSize());
  }
}

void AblateRounds() {
  std::printf("\n--- (b) Boruvka round budget vs query success ---\n");
  std::printf("%-8s %12s %14s\n", "rounds", "successes", "of trials");
  const uint64_t n = 256;
  const int trials = 30;
  for (int rounds : {2, 4, 6, 8, 12, 0 /* default */}) {
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const EdgeList edges = RandomConnectedGraph(n, n * 2, t + 1);
      NodeSketchParams p;
      p.num_nodes = n;
      p.seed = static_cast<uint64_t>(rounds) * 1000 + t;
      p.rounds = rounds;
      std::vector<NodeSketch> sketches;
      for (uint64_t i = 0; i < n; ++i) sketches.emplace_back(p);
      for (const Edge& e : edges) {
        const uint64_t idx = EdgeToIndex(e, n);
        sketches[e.u].Update(idx);
        sketches[e.v].Update(idx);
      }
      const ConnectivityResult r = BoruvkaConnectivity(&sketches);
      if (!r.failed && r.num_components == 1) ++successes;
    }
    if (rounds == 0) {
      std::printf("%-8s %12d %14d\n", "default", successes, trials);
    } else {
      std::printf("%-8d %12d %14d\n", rounds, successes, trials);
    }
  }
}

void AblateBatchSize() {
  std::printf("\n--- (c) update locality: scattered vs per-node batches ---\n");
  std::printf("%-12s %14s\n", "batch size", "updates/s");
  // Many node sketches (the real ingestion working set): scattered
  // single updates touch a different ~tens-of-KB sketch every time,
  // while batching revisits one sketch's buckets while they are hot.
  const uint64_t num_nodes = 1 << 9;
  NodeSketchParams p;
  p.num_nodes = num_nodes;
  p.seed = 5;
  std::vector<NodeSketch> sketches;
  sketches.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) sketches.emplace_back(p);

  SplitMix64 rng(9);
  const size_t total_updates = 400000;
  std::vector<uint64_t> indices(total_updates);
  for (auto& idx : indices) idx = rng.NextBelow(NumPossibleEdges(num_nodes));

  for (size_t batch : {1UL, 16UL, 256UL, 2048UL}) {
    WallTimer timer;
    size_t start = 0;
    size_t node = 0;
    while (start < total_updates) {
      const size_t count = std::min(batch, total_updates - start);
      // batch=1 models unbuffered ingestion: every update lands on a
      // different node sketch (scattered). Larger batches model gutter
      // output: `count` consecutive updates to one node's sketch.
      sketches[node % num_nodes].UpdateBatch(indices.data() + start, count);
      ++node;
      start += count;
    }
    std::printf("%-12zu %14.0f\n", batch,
                static_cast<double>(total_updates) / timer.Seconds());
  }
  std::printf(
      "\nPer-node batches keep one sketch's buckets cache-resident for\n"
      "the whole batch -- the in-RAM motivation for gutters (paper\n"
      "section 6.5); on disk the same batching amortizes whole-sketch\n"
      "read-XOR-write cycles.\n");
}

void AblateHashFamily() {
  std::printf("\n--- (d) hash family: xxHash vs 2-wise polynomial ---\n");
  std::printf("%-14s %16s\n", "family", "hashes/s");
  const size_t n = 2000000;
  {
    WallTimer timer;
    uint64_t sink = 0;
    for (size_t i = 0; i < n; ++i) sink ^= XxHash64Word(i, 7);
    const double rate = static_cast<double>(n) / timer.Seconds();
    std::printf("%-14s %16.0f   (sink %llu)\n", "xxHash64", rate,
                static_cast<unsigned long long>(sink & 1));
  }
  {
    KWiseHash h(7, 2);
    WallTimer timer;
    uint64_t sink = 0;
    for (size_t i = 0; i < n; ++i) sink ^= h.Hash(i);
    const double rate = static_cast<double>(n) / timer.Seconds();
    std::printf("%-14s %16.0f   (sink %llu)\n", "poly 2-wise", rate,
                static_cast<unsigned long long>(sink & 1));
  }
  std::printf(
      "\nThe analysis only needs 2-wise independence; the system follows\n"
      "the paper in using xxHash for speed. This measures the tradeoff.\n");
}

}  // namespace
}  // namespace gz

int main() {
  gz::bench::PrintHeader("Ablation", "sketch and pipeline design knobs");
  gz::AblateColumns();
  gz::AblateRounds();
  gz::AblateBatchSize();
  gz::AblateHashFamily();
  return 0;
}
