// Ablation bench: gutter tree geometry (DESIGN.md section 5 /
// paper Section 5.1). Sweeps internal-buffer size and fan-out and
// reports ingestion rate plus the tree's own I/O volume — the knobs the
// paper fixes at 8 MB / fan-out 512 for SATA SSDs.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "buffer/gutter_tree.h"
#include "buffer/work_queue.h"
#include "util/timer.h"

namespace gz {
namespace {

struct TreeRunResult {
  double updates_per_sec = 0;
  double write_amp = 0;  // Tree bytes written per update byte.
};

TreeRunResult RunTree(const bench::Workload& w, size_t buffer_bytes,
                      size_t fanout, size_t leaf_updates) {
  WorkQueue queue(1 << 20);  // Effectively unbounded: isolate tree cost.
  BatchPool pool(static_cast<uint32_t>(leaf_updates));
  GutterTreeParams p;
  p.num_nodes = w.num_nodes;
  p.file_path = bench::TempDir() + "/gz_ablation_gt.bin";
  p.buffer_bytes = buffer_bytes;
  p.fanout = fanout;
  p.leaf_gutter_updates = leaf_updates;
  GutterTree tree(p, &pool, &queue);
  GZ_CHECK_OK(tree.Init());

  // Drain the queue concurrently so Push never blocks for long.
  std::atomic<bool> done{false};
  std::thread drainer([&queue, &pool, &done] {
    while (!done.load(std::memory_order_acquire)) {
      while (queue.ApproxSize() > 0) {
        UpdateBatch* batch = queue.Pop();
        if (batch == nullptr) break;
        pool.Release(batch);
        queue.MarkDone();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  WallTimer timer;
  const uint64_t half_updates =
      static_cast<uint64_t>(w.stream.updates.size()) * 2;
  tree.InsertBatch(w.stream.updates.data(), w.stream.updates.size());
  tree.ForceFlush();
  const double seconds = timer.Seconds();
  done.store(true, std::memory_order_release);
  queue.Close();
  drainer.join();

  TreeRunResult result;
  result.updates_per_sec =
      static_cast<double>(w.stream.updates.size()) / seconds;
  result.write_amp = static_cast<double>(tree.bytes_written()) /
                     (static_cast<double>(half_updates) * 12.0);
  std::remove(p.file_path.c_str());
  return result;
}

}  // namespace
}  // namespace gz

int main() {
  using namespace gz;
  bench::PrintHeader("Ablation", "gutter tree geometry");
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);

  std::printf("--- internal buffer size (fanout 64, leaf 512 updates) ---\n");
  std::printf("%-12s %14s %12s\n", "buffer", "updates/s", "write-amp");
  for (size_t buffer_kb : {16UL, 64UL, 256UL, 1024UL, 4096UL}) {
    const TreeRunResult r = RunTree(w, buffer_kb << 10, 64, 512);
    std::printf("%8zu KiB %14.0f %11.2fx\n", buffer_kb, r.updates_per_sec,
                r.write_amp);
  }

  std::printf("\n--- fan-out (buffer 1 MiB, leaf 512 updates) ---\n");
  std::printf("%-12s %14s %12s\n", "fanout", "updates/s", "write-amp");
  for (size_t fanout : {4UL, 16UL, 64UL, 256UL}) {
    const TreeRunResult r = RunTree(w, 1 << 20, fanout, 512);
    std::printf("%-12zu %14.0f %11.2fx\n", fanout, r.updates_per_sec,
                r.write_amp);
  }

  std::printf(
      "\nWrite amplification falls as fan-out grows (fewer tree levels,\n"
      "each record written once per level); the paper's 8 MB x 512\n"
      "choice drives amplification toward 1 write per record at SSD-\n"
      "friendly 16 KB granularity.\n");
  return 0;
}
