// Section 6.3: reliability trials. Streams are ingested in parallel by
// GraphZeppelin and an exact bit-vector adjacency matrix; at periodic
// checkpoints GraphZeppelin's answer is compared against Kruskal's on
// the matrix. The paper runs 1000 checks per dataset and observes zero
// failures; default here is smaller (GZ_BENCH_TRIALS to raise it).
#include <cstdio>

#include "baseline/matrix_checker.h"
#include "bench/bench_common.h"

namespace gz {
namespace {

// Runs one stream with `checks` interleaved correctness checks.
// Returns the number of failed checks.
int RunTrial(const bench::Workload& w, uint64_t seed, int checks) {
  GraphZeppelinConfig config = bench::DefaultGzConfig(seed);
  config.num_nodes = w.num_nodes;
  GraphZeppelin gz(config);
  GZ_CHECK_OK(gz.Init());
  AdjacencyMatrixChecker checker(w.num_nodes);

  int failures = 0;
  const size_t total = w.stream.updates.size();
  size_t consumed = 0;
  size_t next_check = total / checks;
  for (const GraphUpdate& u : w.stream.updates) {
    gz.Update(u);
    checker.Update(u);
    ++consumed;
    if (consumed >= next_check || consumed == total) {
      const ConnectivityResult got = gz.ListSpanningForest();
      const ConnectivityResult expect = checker.ConnectedComponents();
      bool ok = !got.failed && got.num_components == expect.num_components;
      if (ok) {
        // Partition equality via label normalization.
        for (uint64_t i = 0; i < w.num_nodes && ok; ++i) {
          for (uint64_t j = i + 1; j < w.num_nodes; ++j) {
            if ((got.component_of[i] == got.component_of[j]) !=
                (expect.component_of[i] == expect.component_of[j])) {
              ok = false;
              break;
            }
          }
        }
      }
      if (!ok) ++failures;
      next_check += total / checks;
    }
  }
  return failures;
}

}  // namespace
}  // namespace gz

int main() {
  using namespace gz;
  bench::PrintHeader("Section 6.3", "reliability trials");
  const int trials = bench::GetEnvInt("GZ_BENCH_TRIALS", 40);
  const int checks_per_trial = 5;

  int total_checks = 0;
  int total_failures = 0;

  // Dense Kronecker streams with fresh seeds per trial.
  for (int t = 0; t < trials; ++t) {
    const bench::Workload w =
        bench::MakeKronWorkload(/*scale=*/7, /*seed=*/t + 1);
    total_failures += RunTrial(w, 1000 + t, checks_per_trial);
    total_checks += checks_per_trial;
  }
  std::printf("kron streams:        %3d trials x %d checks, %d failures\n",
              trials, checks_per_trial, total_failures);

  // Sparse real-world stand-ins (the paper also checks sparse inputs).
  int rw_checks = 0, rw_failures = 0;
  for (const bench::Workload& w : bench::MakeRealWorldWorkloads(64)) {
    rw_failures += RunTrial(w, 77, checks_per_trial);
    rw_checks += checks_per_trial;
  }
  std::printf("real-world stand-ins: %2d checks, %d failures\n", rw_checks,
              rw_failures);

  std::printf(
      "\nTotal: %d correctness checks, %d failures (paper: 5000 checks,\n"
      "0 failures). Set GZ_BENCH_TRIALS=200 for a full-scale run.\n",
      total_checks + rw_checks, total_failures + rw_failures);
  return (total_failures + rw_failures) == 0 ? 0 : 1;
}
