// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench prints paper-style rows at a scaled-down default size and
// honors environment overrides so the full paper scales can be run on
// bigger hardware:
//   GZ_BENCH_KRON_MIN / GZ_BENCH_KRON_MAX  — Kronecker scale range
//   GZ_BENCH_TRIALS                        — reliability trial count
//   GZ_BENCH_WORKERS                       — max Graph Workers
#ifndef GZ_BENCH_BENCH_COMMON_H_
#define GZ_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baseline/csr_batch_graph.h"
#include "baseline/hash_adjacency_graph.h"
#include "core/graph_zeppelin.h"
#include "stream/erdos_renyi_generator.h"
#include "stream/kronecker_generator.h"
#include "stream/stream_transform.h"
#include "util/check.h"
#include "util/mem_usage.h"
#include "util/timer.h"

namespace gz {
namespace bench {

inline int GetEnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

inline std::string TempDir() {
  const char* dir = std::getenv("TMPDIR");
  return dir != nullptr && *dir != '\0' ? dir : "/tmp";
}

// A named stream workload (kronNN or a real-world stand-in).
struct Workload {
  std::string name;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;  // Edges of the generated (pre-stream) graph.
  StreamTransformResult stream;
};

// Builds the paper's kronNN dense stream at the given scale.
inline Workload MakeKronWorkload(int scale, uint64_t seed = 1,
                                 double density = 0.5) {
  KroneckerParams kp;
  kp.scale = scale;
  kp.density = density;
  kp.seed = seed;
  KroneckerGenerator gen(kp);
  Workload w;
  w.name = "kron" + std::to_string(scale);
  w.num_nodes = gen.num_nodes();
  EdgeList edges = gen.Generate();
  w.num_edges = edges.size();
  StreamTransformParams tp;
  tp.num_nodes = w.num_nodes;
  tp.seed = seed;
  w.stream = BuildStream(edges, tp);
  return w;
}

// Real-world dataset stand-ins (offline substitution; see DESIGN.md §2).
// Shapes mirror the paper's Table 10 rows at reduced scale.
inline std::vector<Workload> MakeRealWorldWorkloads(int divisor = 16) {
  std::vector<Workload> workloads;
  auto add = [&workloads](const std::string& name, uint64_t nodes,
                          EdgeList edges, uint64_t seed) {
    Workload w;
    w.name = name;
    w.num_nodes = nodes;
    w.num_edges = edges.size();
    StreamTransformParams tp;
    tp.num_nodes = nodes;
    tp.seed = seed;
    w.stream = BuildStream(edges, tp);
    workloads.push_back(std::move(w));
  };

  // p2p-gnutella: sparse, near-random peer network (E ~ 2.4 N).
  {
    const uint64_t n = 63000 / divisor;
    add("p2p-gnutella", n, RandomConnectedGraph(n, n * 24 / 10, 101), 101);
  }
  // rec-amazon: very sparse co-purchase graph (E ~ 1.4 N).
  {
    const uint64_t n = 92000 / divisor;
    add("rec-amazon", n, RandomConnectedGraph(n, n * 14 / 10, 102), 102);
  }
  // google-plus: skewed social graph, avg degree ~250 in the paper;
  // Kronecker skew at moderate density mimics it.
  {
    KroneckerParams kp;
    kp.scale = 11;
    kp.density = 0.05;
    kp.seed = 103;
    KroneckerGenerator gen(kp);
    add("google-plus", gen.num_nodes(), gen.Generate(), 103);
  }
  // web-uk: web graph with heavy local clustering.
  {
    KroneckerParams kp;
    kp.scale = 11;
    kp.density = 0.04;
    kp.seed = 104;
    KroneckerGenerator gen(kp);
    add("web-uk", gen.num_nodes(), gen.Generate(), 104);
  }
  return workloads;
}

// --- Ingestion runners ----------------------------------------------------

struct IngestResult {
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  size_t ram_bytes = 0;
  size_t disk_bytes = 0;
};

inline IngestResult RunGraphZeppelin(const Workload& w,
                                     GraphZeppelinConfig config,
                                     ConnectivityResult* query_result =
                                         nullptr,
                                     double* query_seconds = nullptr) {
  config.num_nodes = w.num_nodes;
  GraphZeppelin gz(config);
  GZ_CHECK_OK(gz.Init());
  // Ingestion time includes the final flush/drain, as the paper's
  // average ingestion rates do. The whole stream goes through the bulk
  // span API, the fastest path through the flat batch pipeline.
  WallTimer timer;
  gz.Update(w.stream.updates.data(), w.stream.updates.size());
  // Sample memory before the final flush: steady-state ingestion RAM
  // includes the loaded gutters, which drain at flush time.
  const size_t ram_mid_stream = gz.RamByteSize();
  gz.Flush();
  IngestResult out;
  out.seconds = std::max(timer.Seconds(), 1e-9);
  out.updates_per_sec =
      static_cast<double>(w.stream.updates.size()) / out.seconds;
  out.ram_bytes = std::max(ram_mid_stream, gz.RamByteSize());
  out.disk_bytes = gz.DiskByteSize();
  if (query_result != nullptr || query_seconds != nullptr) {
    WallTimer query_timer;
    ConnectivityResult r = gz.ListSpanningForest();
    if (query_seconds != nullptr) *query_seconds = query_timer.Seconds();
    if (query_result != nullptr) *query_result = std::move(r);
  }
  return out;
}

template <typename GraphT>
inline IngestResult RunExplicitBaseline(const Workload& w, GraphT* graph,
                                        ConnectivityResult* query_result =
                                            nullptr,
                                        double* query_seconds = nullptr) {
  WallTimer timer;
  for (const GraphUpdate& u : w.stream.updates) graph->Update(u);
  IngestResult out;
  out.seconds = timer.Seconds();
  if (out.seconds <= 0) out.seconds = 1e-9;
  out.updates_per_sec =
      static_cast<double>(w.stream.updates.size()) / out.seconds;
  out.ram_bytes = graph->ByteSize();
  if (query_result != nullptr || query_seconds != nullptr) {
    WallTimer query_timer;
    ConnectivityResult r = graph->ConnectedComponents();
    if (query_seconds != nullptr) *query_seconds = query_timer.Seconds();
    if (query_result != nullptr) *query_result = std::move(r);
  }
  return out;
}

inline GraphZeppelinConfig DefaultGzConfig(uint64_t seed = 42) {
  GraphZeppelinConfig c;
  c.seed = seed;
  c.num_workers = GetEnvInt("GZ_BENCH_WORKERS", 2);
  c.disk_dir = TempDir();
  return c;
}

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("=== %s: %s ===\n", figure, title);
}

}  // namespace bench
}  // namespace gz

#endif  // GZ_BENCH_BENCH_COMMON_H_
