// Figure 5: sketch sizes of the standard l0 sampler vs CubeSketch for
// vector lengths 10^3 .. 10^12.
//
// Paper shape to reproduce: standard l0 is ~2x larger in the narrow
// (64-bit) regime and ~4x larger once its buckets widen to 128-bit
// integers, while both grow logarithmically with vector length.
#include <cstdio>

#include "bench/bench_common.h"
#include "sketch/cube_sketch.h"
#include "sketch/l0_standard.h"
#include "util/mem_usage.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 5", "l0 sketch sizes");
  std::printf("%-14s %14s %14s %16s\n", "Vector Length", "Standard l0",
              "CubeSketch", "Size Reduction");

  for (int exp10 = 3; exp10 <= 12; ++exp10) {
    uint64_t len = 1;
    for (int i = 0; i < exp10; ++i) len *= 10;

    CubeSketchParams cp;
    cp.vector_len = len;
    cp.seed = 1;
    const CubeSketch cube(cp);

    L0SketchParams lp;
    lp.vector_len = len;
    lp.seed = 1;
    const StandardL0Sketch standard(lp);

    char buf_std[32], buf_cube[32];
    std::printf("10^%-11d %14s %14s %15.1fx%s\n", exp10,
                FormatBytes(standard.ByteSize(), buf_std, sizeof(buf_std)),
                FormatBytes(cube.ByteSize(), buf_cube, sizeof(buf_cube)),
                static_cast<double>(standard.ByteSize()) /
                    static_cast<double>(cube.ByteSize()),
                standard.wide() ? "  (128-bit buckets)" : "");
  }
  return 0;
}
