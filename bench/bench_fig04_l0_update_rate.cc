// Figure 4: CubeSketch vs standard l0 sketching ingestion rate across
// vector lengths 10^3 .. 10^12, plus the Section 3 back-of-the-envelope
// StreamingCC feasibility row.
//
// Paper shape to reproduce: both rates decline slowly with length; the
// standard sampler falls off a cliff once 128-bit arithmetic kicks in,
// while CubeSketch stays within one order of magnitude of its small-
// vector rate; the speedup factor grows with length.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sketch/cube_sketch.h"
#include "sketch/l0_standard.h"
#include "util/random.h"
#include "util/timer.h"

namespace gz {
namespace {

double MeasureCubeSketch(uint64_t vector_len, int target_updates) {
  CubeSketchParams p;
  p.vector_len = vector_len;
  p.seed = 7;
  CubeSketch sketch(p);
  SplitMix64 rng(13);
  std::vector<uint64_t> indices(target_updates);
  for (auto& idx : indices) idx = rng.NextBelow(vector_len);
  WallTimer timer;
  sketch.UpdateBatch(indices.data(), indices.size());
  return static_cast<double>(target_updates) / timer.Seconds();
}

double MeasureStandardL0(uint64_t vector_len, int target_updates) {
  L0SketchParams p;
  p.vector_len = vector_len;
  p.seed = 7;
  StandardL0Sketch sketch(p);
  SplitMix64 rng(13);
  std::vector<uint64_t> indices(target_updates);
  for (auto& idx : indices) idx = rng.NextBelow(vector_len);
  WallTimer timer;
  for (uint64_t idx : indices) sketch.Update(idx, 1);
  return static_cast<double>(target_updates) / timer.Seconds();
}

}  // namespace
}  // namespace gz

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 4",
                     "l0-sampler ingestion rate (updates/second)");
  std::printf("%-14s %15s %15s %10s\n", "Vector Length", "Standard l0",
              "CubeSketch", "Speedup");

  const int cube_updates = bench::GetEnvInt("GZ_BENCH_L0_UPDATES", 400000);
  double standard_rate_at_1e12 = 0;
  for (int exp10 = 3; exp10 <= 12; ++exp10) {
    uint64_t len = 1;
    for (int i = 0; i < exp10; ++i) len *= 10;
    // The standard sampler is orders of magnitude slower; keep its
    // sample count proportional so the bench stays quick.
    const int std_updates = std::max(2000, cube_updates / 100);
    const double cube = MeasureCubeSketch(len, cube_updates);
    const double standard = MeasureStandardL0(len, std_updates);
    if (exp10 == 12) standard_rate_at_1e12 = standard;
    std::printf("10^%-11d %15.0f %15.0f %9.1fx\n", exp10, standard, cube,
                cube / standard);
  }

  std::printf(
      "\nSection 3 feasibility check: StreamingCC applies each update to\n"
      "2 node sketches x log(V) subsketches. For V = 10^6 (vector length\n"
      "~5*10^11), implied StreamingCC rate ~= %.0f / 40 = %.0f edge\n"
      "updates/second, matching the paper's infeasibility conclusion.\n",
      standard_rate_at_1e12, standard_rate_at_1e12 / 40.0);
  return 0;
}
