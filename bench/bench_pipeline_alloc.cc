// Pipeline allocation bench: verifies the flat pooled-batch refactor's
// core claim — steady-state ingestion performs zero heap allocations
// per update in the gutter -> queue -> worker path — and measures the
// ingest rate alongside, emitting one JSON object per configuration so
// BENCH_*.json trajectories can track both across builds.
//
// Method: global operator new/delete are overridden with a counting
// hook (the C++ analogue of malloc_count). Phase 1 ingests the whole
// stream once to warm the BatchPool, gutters and worker deltas; phase 2
// re-ingests with the counter armed. Pool recycling means phase 2 must
// allocate nothing — on the leaf+RAM path AND the gutter-tree path,
// whose internal flush buffers are recycled per level the way leaf
// gutters recycle slabs. Enforced with GZ_CHECK, so a regression fails
// the run, not just a JSON field.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_common.h"

// ---- malloc-count hook ----------------------------------------------------

namespace {
std::atomic<bool> g_track{false};
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};

void* CountedAlloc(size_t size) {
  if (g_track.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  if (g_track.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return std::malloc(size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

int main() {
  using namespace gz;
  const int scale = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 11) - 1;
  const bench::Workload w = bench::MakeKronWorkload(scale);
  const uint64_t n_updates = w.stream.updates.size();

  std::fprintf(stderr, "pipeline alloc bench: %s, %llu updates\n",
               w.name.c_str(), static_cast<unsigned long long>(n_updates));

  struct Case {
    GraphZeppelinConfig::Buffering buffering;
    const char* name;
  };
  const Case cases[] = {
      {GraphZeppelinConfig::Buffering::kLeafOnly, "leaf_ram"},
      {GraphZeppelinConfig::Buffering::kGutterTree, "tree_ram"},
  };

  std::printf("[\n");
  bool first = true;
  for (const Case& c : cases) {
    GraphZeppelinConfig config = bench::DefaultGzConfig();
    config.num_nodes = w.num_nodes;
    config.buffering = c.buffering;
    GraphZeppelin gz(config);
    GZ_CHECK_OK(gz.Init());

    // Phase 1: warm-up pass. Grows the BatchPool to the pipeline's peak
    // depth and lets every worker build its delta sketch.
    gz.Update(w.stream.updates.data(), n_updates);
    gz.Flush();

    // Phase 2: steady state, counter armed. Same updates again — the
    // sketches just toggle back; costs are identical.
    g_alloc_count.store(0);
    g_alloc_bytes.store(0);
    g_track.store(true);
    WallTimer timer;
    gz.Update(w.stream.updates.data(), n_updates);
    gz.Flush();
    const double seconds = timer.Seconds();
    g_track.store(false);

    const uint64_t allocs = g_alloc_count.load();
    const uint64_t bytes = g_alloc_bytes.load();
    const double allocs_per_update =
        static_cast<double>(allocs) / static_cast<double>(n_updates);
    std::printf(
        "%s  {\"bench\": \"pipeline_alloc\", \"config\": \"%s\",\n"
        "   \"workload\": \"%s\", \"updates\": %llu,\n"
        "   \"steady_allocs\": %llu, \"steady_alloc_bytes\": %llu,\n"
        "   \"allocs_per_update\": %.6f,\n"
        "   \"updates_per_sec\": %.0f,\n"
        "   \"zero_alloc_steady_state\": %s}",
        first ? "" : ",\n", c.name, w.name.c_str(),
        static_cast<unsigned long long>(n_updates),
        static_cast<unsigned long long>(allocs),
        static_cast<unsigned long long>(bytes), allocs_per_update,
        static_cast<double>(n_updates) / seconds,
        allocs == 0 ? "true" : "false");
    first = false;
    GZ_CHECK_MSG(allocs == 0, "steady-state ingestion allocated");
  }
  std::printf("\n]\n");
  return 0;
}
