// Figure 12c: connected-components computation time after stream
// ingestion, per system.
//
// Paper shape to reproduce: GraphZeppelin's query cost depends on
// V log^3 V (sketch Boruvka), not on the edge count, so on dense
// streams it is competitive with — and at scale faster than — BFS/DFS
// over explicit structures whose work grows with E.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gz;
  bench::PrintHeader("Figure 12c", "CC computation time (seconds)");
  std::printf("%-8s %12s %12s %14s %14s\n", "Dataset", "Aspen-like",
              "Terrace-lk", "GZ GutterTree", "GZ LeafOnly");

  const int kron_min = bench::GetEnvInt("GZ_BENCH_KRON_MIN", 8);
  const int kron_max = bench::GetEnvInt("GZ_BENCH_KRON_MAX", 10);
  for (int scale = kron_min; scale <= kron_max; ++scale) {
    const bench::Workload w = bench::MakeKronWorkload(scale);

    double aspen_q = 0, terrace_q = 0, tree_q = 0, leaf_q = 0;
    ConnectivityResult r;

    CsrBatchGraph aspen_like(w.num_nodes, 1 << 16);
    bench::RunExplicitBaseline(w, &aspen_like, &r, &aspen_q);
    const size_t expect_components = r.num_components;

    HashAdjacencyGraph terrace_like(w.num_nodes);
    bench::RunExplicitBaseline(w, &terrace_like, &r, &terrace_q);
    GZ_CHECK(r.num_components == expect_components);

    GraphZeppelinConfig tree_config = bench::DefaultGzConfig();
    tree_config.buffering = GraphZeppelinConfig::Buffering::kGutterTree;
    bench::RunGraphZeppelin(w, tree_config, &r, &tree_q);
    GZ_CHECK(!r.failed && r.num_components == expect_components);

    GraphZeppelinConfig leaf_config = bench::DefaultGzConfig();
    bench::RunGraphZeppelin(w, leaf_config, &r, &leaf_q);
    GZ_CHECK(!r.failed && r.num_components == expect_components);

    std::printf("%-8s %12.3f %12.3f %14.3f %14.3f\n", w.name.c_str(),
                aspen_q, terrace_q, tree_q, leaf_q);
  }
  std::printf(
      "\nAll four systems agreed on the component count of every stream\n"
      "(GZ_CHECK-verified during the run).\n");
  return 0;
}
